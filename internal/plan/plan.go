// Package plan chooses the cheapest safe reconfiguration stream for a
// dynamic area. The paper's §2.2 observation is that a differential partial
// bitstream — only the frames that differ from what is resident — is far
// smaller and faster through the HWICAP than a complete configuration, but
// is correct only when the assumed resident state matches reality. The
// planner encodes that rule as a type: a Plan names the stream kind AND the
// assumed from-state, so the load path can verify the assumption at issue
// time, making the stale-differential hazard impossible by construction.
//
// Transition costs are memoized per (from, to) module pair, so repeated
// planning over a long-running workload never re-assembles a differential,
// and a per-byte time model (calibrated from observed loads) turns stream
// sizes into estimated configuration times for cost-aware placement.
package plan

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// StreamKind is the kind of configuration stream a plan issues.
type StreamKind int

const (
	// StreamNone: the wanted module is already resident — no ICAP traffic.
	StreamNone StreamKind = iota
	// StreamDifferential: only the frames that differ from the (verified)
	// resident state are written. Smallest and fastest, state-dependent.
	StreamDifferential
	// StreamComplete: every region frame is written. Correct regardless of
	// prior state — the worst-case fallback.
	StreamComplete
	// StreamCompressed: an opcode-compressed container that decodes on the
	// fly at the ICAP into a complete or differential stream (Base names
	// which). Fewer bytes on the wire; the configuration port still
	// consumes every decoded word, so Raw carries the decoded size.
	StreamCompressed
)

// String returns the kind as a short stable label.
func (k StreamKind) String() string {
	switch k {
	case StreamNone:
		return "none"
	case StreamDifferential:
		return "differential"
	case StreamComplete:
		return "complete"
	case StreamCompressed:
		return "compressed"
	}
	return fmt.Sprintf("StreamKind(%d)", int(k))
}

// Plan is one chosen reconfiguration action: bring Module into the region,
// using the given stream kind. For a differential stream, From records the
// assumed resident state ("" = the blank post-boot baseline) that the load
// path must re-verify before streaming.
type Plan struct {
	Module string
	From   string
	Kind   StreamKind
	// Region names the dynamic region the plan targets ("" on a planner
	// not bound to a region). On a multi-region device every stream is
	// planned per (region, resident → wanted) pair: the same transition
	// can cost differently on two regions, and the load path must issue
	// the stream against the region the sizes were computed for.
	Region string
	// Base names the stream a compressed container decodes into
	// (StreamComplete or StreamDifferential); StreamNone otherwise. A
	// complete-based container uses no configuration-memory references and
	// is as state-independent as the complete stream itself; a
	// differential-based one inherits the §2.2 residency precondition.
	Base StreamKind
	// Bytes and Frames size the chosen stream (0 for StreamNone). For a
	// compressed stream Bytes is the wire (container) size.
	Bytes  int
	Frames int
	// Raw is the decoded stream size in bytes — what the configuration
	// port consumes. Equal to Bytes except for compressed streams. The
	// per-byte time model is calibrated against Raw, never the wire size.
	Raw int
	// Est is the estimated configuration time under the planner's
	// calibrated per-byte model (0 for StreamNone).
	Est sim.Time
}

// Source sizes the streams a planner may choose between. *core.Manager
// implements it; both size queries are memoized below the interface, so
// repeated planning is cheap.
type Source interface {
	// Has reports whether the module is registered.
	Has(name string) bool
	// CompleteSize returns the byte and frame count of the module's
	// complete configuration stream.
	CompleteSize(name string) (bytes, frames int, err error)
	// DifferentialSize returns the byte and frame count of the
	// differential stream for the (from → to) transition. from == ""
	// means the blank baseline. It errors when no differential exists.
	DifferentialSize(from, to string) (bytes, frames int, err error)
	// CompressedSize sizes the compressed container derived from the
	// (from → to) differential stream: wire bytes, decoded (raw) bytes
	// and frame count. It errors when no differential exists.
	CompressedSize(from, to string) (bytes, raw, frames int, err error)
	// CompleteCompressedSize sizes the compressed container derived from
	// the module's complete stream (RLE only, state-independent).
	CompleteCompressedSize(name string) (bytes, raw, frames int, err error)
}

// DefaultFsPerByte seeds the cost model: femtoseconds of configuration time
// per streamed byte, before any load has been observed. The figure matches
// the measured HWICAP rate of the 32-bit system (a 367 684 B complete
// stream in 7.814 ms).
const DefaultFsPerByte = 21_250_000

type pairKey struct{ from, to string }

type pairEntry struct {
	bytes, frames int
	ok            bool // false: no differential exists for this pair
}

type zEntry struct {
	bytes, raw, frames int
	ok                 bool
}

// Planner chooses streams over one dynamic area. Safe for concurrent use.
type Planner struct {
	src    Source
	region string

	mu        sync.Mutex
	compress  bool
	complete  map[string]pairEntry // complete stream sizes by module
	pairs     map[pairKey]pairEntry
	zpairs    map[pairKey]zEntry // compressed differential containers
	zfull     map[string]zEntry  // compressed complete containers
	fsPerByte float64
	observed  uint64

	// obs, when set, observes every decided plan — the trace spine
	// records each per-transition kind/bytes decision without plan
	// depending on the tracer package.
	obs func(p Plan)
}

// New returns a planner over the stream source.
func New(src Source) *Planner {
	return NewFor("", src)
}

// NewFor returns a planner bound to a named dynamic region: every plan it
// produces carries the region, so multi-region load paths and reports can
// tell sibling regions' streams apart.
func NewFor(region string, src Source) *Planner {
	return &Planner{
		src:       src,
		region:    region,
		complete:  make(map[string]pairEntry),
		pairs:     make(map[pairKey]pairEntry),
		zpairs:    make(map[pairKey]zEntry),
		zfull:     make(map[string]zEntry),
		fsPerByte: DefaultFsPerByte,
	}
}

// Region returns the dynamic region label the planner is bound to.
func (p *Planner) Region() string { return p.region }

// SetObserver installs the plan-decision observer; nil disables it. The
// observer runs on every successful Plan call, under the caller's
// serialization (the load paths plan under the system lock).
func (p *Planner) SetObserver(fn func(Plan)) {
	p.mu.Lock()
	p.obs = fn
	p.mu.Unlock()
}

// observe reports a decided plan to the installed observer.
func (p *Planner) observe(pl Plan) {
	p.mu.Lock()
	fn := p.obs
	p.mu.Unlock()
	if fn != nil {
		fn(pl)
	}
}

// SetCompression toggles compressed-stream planning. Off (the default) the
// planner's choices are byte-identical to the three-kind planner; on, the
// compressed container joins the candidates whenever it is the smallest on
// the wire.
func (p *Planner) SetCompression(on bool) {
	p.mu.Lock()
	p.compress = on
	p.mu.Unlock()
}

func (p *Planner) compression() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compress
}

// Plan returns the cheapest safe stream that makes want resident, given the
// tracked resident state. authoritative reports whether the tracked state
// is known to match the device (the manager's region-hash verification);
// when it is not, only the state-independent complete stream is safe.
func (p *Planner) Plan(resident string, authoritative bool, want string) (Plan, error) {
	if !p.src.Has(want) {
		return Plan{}, fmt.Errorf("plan: unknown module %q", want)
	}
	if authoritative && resident == want {
		pl := Plan{Module: want, From: resident, Kind: StreamNone, Region: p.region}
		p.observe(pl)
		return pl, nil
	}
	cb, cf, err := p.completeSize(want)
	if err != nil {
		return Plan{}, err
	}
	best := Plan{Module: want, Kind: StreamComplete, Bytes: cb, Frames: cf, Raw: cb,
		Est: p.estimate(cb), Region: p.region}
	compress := p.compression()
	if compress {
		// The complete-based container carries no configuration-memory
		// references, so it is as state-independent as the complete
		// stream it decodes into.
		if zb, zraw, zf, ok := p.fullCompressedSize(want); ok && zb < best.Bytes {
			best = Plan{Module: want, Kind: StreamCompressed, Base: StreamComplete,
				Bytes: zb, Frames: zf, Raw: zraw, Est: p.estimate(zraw), Region: p.region}
		}
	}
	if !authoritative {
		p.observe(best)
		return best, nil
	}
	// Safety gate: a differential — compressed or not — is only offered
	// against an authoritative resident state, and the chosen From is
	// carried in the plan so the manager re-verifies it at load time.
	if db, df, ok := p.pairSize(resident, want); ok && db < best.Bytes {
		best = Plan{Module: want, From: resident, Kind: StreamDifferential,
			Bytes: db, Frames: df, Raw: db, Est: p.estimate(db), Region: p.region}
	}
	if compress {
		if zb, zraw, zf, ok := p.pairCompressedSize(resident, want); ok && zb < best.Bytes {
			best = Plan{Module: want, From: resident, Kind: StreamCompressed, Base: StreamDifferential,
				Bytes: zb, Frames: zf, Raw: zraw, Est: p.estimate(zraw), Region: p.region}
		}
	}
	p.observe(best)
	return best, nil
}

// Observe calibrates the per-byte cost model with a measured load. The
// estimate converges as an exponential moving average over observed rates.
// Callers must pass the DECODED (raw) stream size, not the wire size: the
// configuration port consumes every decoded word at a fixed rate, so the
// femtoseconds-per-raw-byte figure is a hardware constant, while the
// wire-byte rate of a compressed load would read ~3x slower and skew every
// differential estimate afterwards.
func (p *Planner) Observe(bytes int, elapsed sim.Time) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(elapsed) / float64(bytes)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observed == 0 {
		p.fsPerByte = rate
	} else {
		p.fsPerByte = 0.75*p.fsPerByte + 0.25*rate
	}
	p.observed++
}

// PairBytes returns the differential stream size for the (from → to)
// transition ("" = the blank baseline), memoizing like Plan. ok is false
// when no differential exists for the pair. Cost-aware prefetchers use the
// (blank → module) size as a state-independent estimate of what re-hosting
// the module later will cost: a differential's frame count is dominated by
// the wider of the two components, so the blank-baseline pair is a stable
// proxy for any from-state.
func (p *Planner) PairBytes(from, to string) (int, bool) {
	if !p.src.Has(to) {
		return 0, false
	}
	b, _, ok := p.pairSize(from, to)
	return b, ok
}

// CompleteBytes returns the module's complete stream size, memoized.
func (p *Planner) CompleteBytes(name string) (int, error) {
	b, _, err := p.completeSize(name)
	return b, err
}

// RestoreBytes is the planner's state-independent estimate, in wire
// bytes, of re-hosting the module later: the (blank → module)
// differential, falling back to the complete stream when no differential
// exists — exactly the candidates Plan would weigh for a future
// transition onto a blank or unknown region. With compression enabled the
// compressed containers join the candidates, because Plan would pick one
// whenever it is smaller: a prefetcher's profit and eviction arithmetic
// must price restores at the bytes a restore would actually stream, or a
// 3x-compressible module looks three times more expensive to evict than
// it is.
func (p *Planner) RestoreBytes(name string) (int, error) {
	best, ok := p.PairBytes("", name)
	if !ok {
		var err error
		if best, err = p.CompleteBytes(name); err != nil {
			return 0, err
		}
	}
	if p.compression() {
		if zb, _, _, ok := p.fullCompressedSize(name); ok && zb < best {
			best = zb
		}
		if zb, _, _, ok := p.pairCompressedSize("", name); ok && zb < best {
			best = zb
		}
	}
	return best, nil
}

// Pairs reports how many (from, to) transitions have been memoized.
func (p *Planner) Pairs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pairs)
}

func (p *Planner) estimate(bytes int) sim.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sim.Time(p.fsPerByte * float64(bytes))
}

func (p *Planner) completeSize(name string) (int, int, error) {
	p.mu.Lock()
	if e, ok := p.complete[name]; ok {
		p.mu.Unlock()
		return e.bytes, e.frames, nil
	}
	p.mu.Unlock()
	b, f, err := p.src.CompleteSize(name)
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	p.complete[name] = pairEntry{bytes: b, frames: f, ok: true}
	p.mu.Unlock()
	return b, f, nil
}

// fullCompressedSize memoizes complete-based container sizes; absent when
// the source cannot compress the module's complete stream.
func (p *Planner) fullCompressedSize(name string) (int, int, int, bool) {
	p.mu.Lock()
	if e, ok := p.zfull[name]; ok {
		p.mu.Unlock()
		return e.bytes, e.raw, e.frames, e.ok
	}
	p.mu.Unlock()
	e := zEntry{}
	if b, r, f, err := p.src.CompleteCompressedSize(name); err == nil {
		e = zEntry{bytes: b, raw: r, frames: f, ok: true}
	}
	p.mu.Lock()
	p.zfull[name] = e
	p.mu.Unlock()
	return e.bytes, e.raw, e.frames, e.ok
}

// pairCompressedSize memoizes differential-based container sizes like
// pairSize, including negative results.
func (p *Planner) pairCompressedSize(from, to string) (int, int, int, bool) {
	key := pairKey{from, to}
	p.mu.Lock()
	if e, ok := p.zpairs[key]; ok {
		p.mu.Unlock()
		return e.bytes, e.raw, e.frames, e.ok
	}
	p.mu.Unlock()
	e := zEntry{}
	if b, r, f, err := p.src.CompressedSize(from, to); err == nil {
		e = zEntry{bytes: b, raw: r, frames: f, ok: true}
	}
	p.mu.Lock()
	p.zpairs[key] = e
	p.mu.Unlock()
	return e.bytes, e.raw, e.frames, e.ok
}

// pairSize memoizes the differential size table. A pair with no
// differential (assembly error) is memoized as absent, so the planner asks
// the assembler at most once per transition.
func (p *Planner) pairSize(from, to string) (int, int, bool) {
	key := pairKey{from, to}
	p.mu.Lock()
	if e, ok := p.pairs[key]; ok {
		p.mu.Unlock()
		return e.bytes, e.frames, e.ok
	}
	p.mu.Unlock()
	e := pairEntry{}
	if b, f, err := p.src.DifferentialSize(from, to); err == nil {
		e = pairEntry{bytes: b, frames: f, ok: true}
	}
	p.mu.Lock()
	p.pairs[key] = e
	p.mu.Unlock()
	return e.bytes, e.frames, e.ok
}
