// Package plan chooses the cheapest safe reconfiguration stream for a
// dynamic area. The paper's §2.2 observation is that a differential partial
// bitstream — only the frames that differ from what is resident — is far
// smaller and faster through the HWICAP than a complete configuration, but
// is correct only when the assumed resident state matches reality. The
// planner encodes that rule as a type: a Plan names the stream kind AND the
// assumed from-state, so the load path can verify the assumption at issue
// time, making the stale-differential hazard impossible by construction.
//
// Transition costs are memoized per (from, to) module pair, so repeated
// planning over a long-running workload never re-assembles a differential,
// and a per-byte time model (calibrated from observed loads) turns stream
// sizes into estimated configuration times for cost-aware placement.
package plan

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// StreamKind is the kind of configuration stream a plan issues.
type StreamKind int

const (
	// StreamNone: the wanted module is already resident — no ICAP traffic.
	StreamNone StreamKind = iota
	// StreamDifferential: only the frames that differ from the (verified)
	// resident state are written. Smallest and fastest, state-dependent.
	StreamDifferential
	// StreamComplete: every region frame is written. Correct regardless of
	// prior state — the worst-case fallback.
	StreamComplete
)

// String returns the kind as a short stable label.
func (k StreamKind) String() string {
	switch k {
	case StreamNone:
		return "none"
	case StreamDifferential:
		return "differential"
	case StreamComplete:
		return "complete"
	}
	return fmt.Sprintf("StreamKind(%d)", int(k))
}

// Plan is one chosen reconfiguration action: bring Module into the region,
// using the given stream kind. For a differential stream, From records the
// assumed resident state ("" = the blank post-boot baseline) that the load
// path must re-verify before streaming.
type Plan struct {
	Module string
	From   string
	Kind   StreamKind
	// Region names the dynamic region the plan targets ("" on a planner
	// not bound to a region). On a multi-region device every stream is
	// planned per (region, resident → wanted) pair: the same transition
	// can cost differently on two regions, and the load path must issue
	// the stream against the region the sizes were computed for.
	Region string
	// Bytes and Frames size the chosen stream (0 for StreamNone).
	Bytes  int
	Frames int
	// Est is the estimated configuration time under the planner's
	// calibrated per-byte model (0 for StreamNone).
	Est sim.Time
}

// Source sizes the streams a planner may choose between. *core.Manager
// implements it; both size queries are memoized below the interface, so
// repeated planning is cheap.
type Source interface {
	// Has reports whether the module is registered.
	Has(name string) bool
	// CompleteSize returns the byte and frame count of the module's
	// complete configuration stream.
	CompleteSize(name string) (bytes, frames int, err error)
	// DifferentialSize returns the byte and frame count of the
	// differential stream for the (from → to) transition. from == ""
	// means the blank baseline. It errors when no differential exists.
	DifferentialSize(from, to string) (bytes, frames int, err error)
}

// DefaultFsPerByte seeds the cost model: femtoseconds of configuration time
// per streamed byte, before any load has been observed. The figure matches
// the measured HWICAP rate of the 32-bit system (a 367 684 B complete
// stream in 7.814 ms).
const DefaultFsPerByte = 21_250_000

type pairKey struct{ from, to string }

type pairEntry struct {
	bytes, frames int
	ok            bool // false: no differential exists for this pair
}

// Planner chooses streams over one dynamic area. Safe for concurrent use.
type Planner struct {
	src    Source
	region string

	mu        sync.Mutex
	complete  map[string]pairEntry // complete stream sizes by module
	pairs     map[pairKey]pairEntry
	fsPerByte float64
	observed  uint64
}

// New returns a planner over the stream source.
func New(src Source) *Planner {
	return NewFor("", src)
}

// NewFor returns a planner bound to a named dynamic region: every plan it
// produces carries the region, so multi-region load paths and reports can
// tell sibling regions' streams apart.
func NewFor(region string, src Source) *Planner {
	return &Planner{
		src:       src,
		region:    region,
		complete:  make(map[string]pairEntry),
		pairs:     make(map[pairKey]pairEntry),
		fsPerByte: DefaultFsPerByte,
	}
}

// Region returns the dynamic region label the planner is bound to.
func (p *Planner) Region() string { return p.region }

// Plan returns the cheapest safe stream that makes want resident, given the
// tracked resident state. authoritative reports whether the tracked state
// is known to match the device (the manager's region-hash verification);
// when it is not, only the state-independent complete stream is safe.
func (p *Planner) Plan(resident string, authoritative bool, want string) (Plan, error) {
	if !p.src.Has(want) {
		return Plan{}, fmt.Errorf("plan: unknown module %q", want)
	}
	if authoritative && resident == want {
		return Plan{Module: want, From: resident, Kind: StreamNone, Region: p.region}, nil
	}
	cb, cf, err := p.completeSize(want)
	if err != nil {
		return Plan{}, err
	}
	full := Plan{Module: want, Kind: StreamComplete, Bytes: cb, Frames: cf,
		Est: p.estimate(cb), Region: p.region}
	if !authoritative {
		return full, nil
	}
	// Safety gate: a differential is only offered against an authoritative
	// resident state, and the chosen From is carried in the plan so the
	// manager re-verifies it at load time.
	db, df, ok := p.pairSize(resident, want)
	if !ok || db >= cb {
		return full, nil
	}
	return Plan{Module: want, From: resident, Kind: StreamDifferential,
		Bytes: db, Frames: df, Est: p.estimate(db), Region: p.region}, nil
}

// Observe calibrates the per-byte cost model with a measured load. The
// estimate converges as an exponential moving average over observed rates.
func (p *Planner) Observe(bytes int, elapsed sim.Time) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(elapsed) / float64(bytes)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observed == 0 {
		p.fsPerByte = rate
	} else {
		p.fsPerByte = 0.75*p.fsPerByte + 0.25*rate
	}
	p.observed++
}

// PairBytes returns the differential stream size for the (from → to)
// transition ("" = the blank baseline), memoizing like Plan. ok is false
// when no differential exists for the pair. Cost-aware prefetchers use the
// (blank → module) size as a state-independent estimate of what re-hosting
// the module later will cost: a differential's frame count is dominated by
// the wider of the two components, so the blank-baseline pair is a stable
// proxy for any from-state.
func (p *Planner) PairBytes(from, to string) (int, bool) {
	if !p.src.Has(to) {
		return 0, false
	}
	b, _, ok := p.pairSize(from, to)
	return b, ok
}

// CompleteBytes returns the module's complete stream size, memoized.
func (p *Planner) CompleteBytes(name string) (int, error) {
	b, _, err := p.completeSize(name)
	return b, err
}

// Pairs reports how many (from, to) transitions have been memoized.
func (p *Planner) Pairs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pairs)
}

func (p *Planner) estimate(bytes int) sim.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return sim.Time(p.fsPerByte * float64(bytes))
}

func (p *Planner) completeSize(name string) (int, int, error) {
	p.mu.Lock()
	if e, ok := p.complete[name]; ok {
		p.mu.Unlock()
		return e.bytes, e.frames, nil
	}
	p.mu.Unlock()
	b, f, err := p.src.CompleteSize(name)
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	p.complete[name] = pairEntry{bytes: b, frames: f, ok: true}
	p.mu.Unlock()
	return b, f, nil
}

// pairSize memoizes the differential size table. A pair with no
// differential (assembly error) is memoized as absent, so the planner asks
// the assembler at most once per transition.
func (p *Planner) pairSize(from, to string) (int, int, bool) {
	key := pairKey{from, to}
	p.mu.Lock()
	if e, ok := p.pairs[key]; ok {
		p.mu.Unlock()
		return e.bytes, e.frames, e.ok
	}
	p.mu.Unlock()
	e := pairEntry{}
	if b, f, err := p.src.DifferentialSize(from, to); err == nil {
		e = pairEntry{bytes: b, frames: f, ok: true}
	}
	p.mu.Lock()
	p.pairs[key] = e
	p.mu.Unlock()
	return e.bytes, e.frames, e.ok
}
