// Package trace is the deterministic event spine of the simulator: an
// allocation-light span/event recorder keyed exclusively to the simulated
// clock (a member's sim.Kernel timeline or the cross-member sim.WallClock
// overlay — never host time). Because every timestamp is simulated, a
// traced run is byte-reproducible: two identical drives emit identical
// event sets, and the Chrome exporter sorts them under a total order, so
// the rendered JSON is byte-identical too. That determinism is what lets
// sojourn percentiles graduate from informational columns to gated SLOs.
//
// A nil *Tracer is a valid no-op recorder, and instrumentation sites
// additionally guard emission with a nil check so the disabled path
// constructs no Event at all — tracing off costs nothing on the dispatch
// hot path (pinned by a benchmark assertion in the sched tests).
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Kind classifies one event. The taxonomy follows a request's life and the
// paper's cost split: where reconfiguration time goes (config transfer,
// overlap, compute) and what the control plane did around it (dispatch,
// steal, plan, hazard verdict, prefetch, scrub, quarantine, repair).
type Kind uint8

const (
	// KindSubmit: a request entered a shard queue (scheduler-level).
	KindSubmit Kind = iota
	// KindDispatch: a request was placed on a (member, region) slot.
	KindDispatch
	// KindSteal: an idle shard stole a queued request from a victim.
	KindSteal
	// KindConfig: visible configuration transfer on a slot (span).
	KindConfig
	// KindOverlap: configuration time hidden behind dispatch/work/sibling
	// loads on the DMA path (span ending where the visible wait begins).
	KindOverlap
	// KindCompute: the placed module's execution on the fabric (span).
	KindCompute
	// KindComplete: a request finished (instant; Arg = latency/sojourn fs).
	KindComplete
	// KindPlan: the planner chose a stream kind for a transition.
	KindPlan
	// KindHazard: the §2.2 gate refused a stale plan.
	KindHazard
	// KindDemote: a region's resident state lost authority (Name = reason).
	KindDemote
	// KindPrefetchLaunch: a speculative load was launched on an idle slot.
	KindPrefetchLaunch
	// KindPrefetchConfig: the speculative stream's port time (span).
	KindPrefetchConfig
	// KindPrefetchHit: a completed speculative load was consumed by a
	// real request (instant; Arg = prefetched bytes consumed).
	KindPrefetchHit
	// KindPrefetchAbort: a real request preempted the speculative stream.
	KindPrefetchAbort
	// KindScrub: one readback-CRC pass over a region (Arg = 1 when the
	// pass detected corruption).
	KindScrub
	// KindQuarantine: a faulted slot was pulled from dispatch.
	KindQuarantine
	// KindRepair: the healing complete reload of a quarantined slot (span).
	KindRepair
	// KindDMAWindow: a dock DMA engine's port window (span; Arg = wire
	// bytes, Name = "compressed" when the decoder front-end was armed).
	KindDMAWindow
)

var kindNames = [...]string{
	"submit", "dispatch", "steal", "config", "overlap", "compute",
	"complete", "plan", "hazard", "demote", "prefetch-launch",
	"prefetch-config", "prefetch-hit", "prefetch-abort", "scrub",
	"quarantine", "repair", "dma-window",
}

// String returns the kind as a short stable label.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one trace record. Spans carry Dur > 0; instants carry Dur == 0.
// Member/Region place the event on a slot track; -1 means scheduler-level
// (no slot yet). Name is the module or reason, Arg an event-specific
// scalar (bytes, latency, victim shard).
type Event struct {
	Ts     sim.Time
	Dur    sim.Time
	Kind   Kind
	Member int32
	Region int32
	ID     uint64
	Name   string
	Arg    int64
}

// Tracer buffers events under a mutex. The zero value is ready to use; a
// nil *Tracer is a valid recorder whose Emit is a no-op, so call sites
// can hold one pointer for both modes.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	sink   func(Event)
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether emissions are recorded. Instrumentation sites
// use the nil check directly so the disabled path builds no Event.
func (t *Tracer) Enabled() bool { return t != nil }

// SetSink installs a callback invoked under the tracer lock for every
// emitted event — the metrics registry feeds from here.
func (t *Tracer) SetSink(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Emit records one event. Safe for concurrent use; a nil receiver drops
// the event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	if t.sink != nil {
		t.sink(e)
	}
	t.mu.Unlock()
}

// Len reports how many events have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset drops all recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// Events returns a sorted copy of the recorded events. The order is a
// total order over every field, so two runs that emitted the same event
// set return the same slice regardless of goroutine interleaving — the
// foundation of byte-identical exports.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// less is the total order: simulated time first, then slot, then the
// remaining fields so no two distinct events ever compare equal.
func less(a, b Event) bool {
	if a.Ts != b.Ts {
		return a.Ts < b.Ts
	}
	if a.Member != b.Member {
		return a.Member < b.Member
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Dur != b.Dur {
		return a.Dur < b.Dur
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Arg < b.Arg
}

// SumDur totals the durations of one event kind on one (member, region)
// slot — the conservation probe: per-slot config spans must sum exactly
// to the run's Stats config-time accounting.
func SumDur(events []Event, k Kind, member, region int32) sim.Time {
	var total sim.Time
	for _, e := range events {
		if e.Kind == k && e.Member == member && e.Region == region {
			total += e.Dur
		}
	}
	return total
}
