package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestNilTracerNoOp: every method is safe and free on a nil receiver.
func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindConfig})
	tr.SetSink(func(Event) {})
	tr.Reset()
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(Event{Ts: 1, Dur: 2, Kind: KindConfig, Member: 0, Region: 0, ID: 3})
	}); allocs != 0 {
		t.Fatalf("nil Emit allocates: %v allocs/op", allocs)
	}
}

// TestEventsDeterministicOrder: the exported order is independent of
// emission interleaving.
func TestEventsDeterministicOrder(t *testing.T) {
	build := func(seed int64) []Event {
		rng := rand.New(rand.NewSource(seed))
		evs := make([]Event, 200)
		for i := range evs {
			evs[i] = Event{
				Ts:     sim.Time(rng.Intn(50)),
				Dur:    sim.Time(rng.Intn(5)),
				Kind:   Kind(rng.Intn(int(KindDMAWindow) + 1)),
				Member: int32(rng.Intn(3) - 1),
				Region: int32(rng.Intn(2) - 1),
				ID:     uint64(rng.Intn(20)),
			}
		}
		return evs
	}
	evs := build(7)
	a := New()
	for _, e := range evs {
		a.Emit(e)
	}
	// Same events, shuffled, emitted from concurrent goroutines.
	b := New()
	perm := rand.New(rand.NewSource(9)).Perm(len(evs))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(perm); i += 4 {
				b.Emit(evs[perm[i]])
			}
		}(w)
	}
	wg.Wait()

	var ba, bb bytes.Buffer
	if err := a.WriteChrome(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChrome(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("chrome export differs across emission orders")
	}
}

// TestChromeExportShape: the export is valid JSON with the expected
// track metadata and span/instant phases.
func TestChromeExportShape(t *testing.T) {
	tr := New()
	tr.Emit(Event{Ts: 1_000_000_000, Dur: 2_000_000_000, Kind: KindConfig, Member: 0, Region: 1, ID: 1, Name: "jenkins", Arg: 4096})
	tr.Emit(Event{Ts: 5_000_000_000, Kind: KindComplete, Member: 0, Region: 1, ID: 1, Arg: 123})
	tr.Emit(Event{Ts: 0, Kind: KindSubmit, Member: -1, Region: -1, ID: 1, Name: "jenkins"})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) != 2.0 {
				t.Fatalf("config span dur = %v µs, want 2", e["dur"])
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 1 || instants != 2 || meta < 4 {
		t.Fatalf("spans=%d instants=%d meta=%d, want 1/2/≥4", spans, instants, meta)
	}
}

// TestSumDur: the conservation probe totals only the requested slot/kind.
func TestSumDur(t *testing.T) {
	evs := []Event{
		{Kind: KindConfig, Member: 0, Region: 0, Dur: 5},
		{Kind: KindConfig, Member: 0, Region: 0, Dur: 7},
		{Kind: KindConfig, Member: 1, Region: 0, Dur: 100},
		{Kind: KindCompute, Member: 0, Region: 0, Dur: 9},
	}
	if got := SumDur(evs, KindConfig, 0, 0); got != 12 {
		t.Fatalf("SumDur = %d, want 12", got)
	}
}

// TestSink: the sink observes every emitted event.
func TestSink(t *testing.T) {
	tr := New()
	var n int
	tr.SetSink(func(Event) { n++ })
	tr.Emit(Event{Kind: KindSubmit})
	tr.Emit(Event{Kind: KindComplete})
	if n != 2 {
		t.Fatalf("sink saw %d events, want 2", n)
	}
}
