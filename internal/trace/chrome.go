package trace

// Chrome trace-event JSON export (the Perfetto/chrome://tracing format).
// One process per pool member (pid = member+1; pid 0 is the scheduler
// control plane), one thread per dynamic region (tid = region+1; tid 0 is
// the member's control track), timestamps in microseconds of simulated
// time. Spans render as "X" complete events, instants as "i" events, so a
// loaded trace draws config/compute/overlap lanes exactly as the paper's
// timeline figures do. Events are emitted in the Tracer's total order and
// every record is marshalled from a fixed struct, so the output bytes are
// a pure function of the event set.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Name string         `json:"name"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts femtoseconds of simulated time to trace microseconds.
func usec(fs int64) float64 { return float64(fs) / 1e9 }

// WriteChrome renders the tracer's events as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Events())
}

// WriteChrome renders an event slice (already in a deterministic order)
// as Chrome trace-event JSON, one record per line.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[\n")
	first := true
	put := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			fmt.Fprint(bw, ",\n")
		}
		first = false
		bw.Write(b)
		return nil
	}

	// Metadata: name every process and thread that appears, in sorted
	// track order, before any timed event.
	type track struct{ pid, tid int32 }
	seen := map[track]bool{}
	var tracks []track
	for _, e := range events {
		tr := track{e.Member + 1, e.Region + 1}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	lastPid := int32(-1)
	for _, tr := range tracks {
		if tr.pid != lastPid {
			lastPid = tr.pid
			pname := fmt.Sprintf("member %d", tr.pid-1)
			if tr.pid == 0 {
				pname = "scheduler"
			}
			if err := put(chromeEvent{Ph: "M", Pid: tr.pid, Name: "process_name",
				Args: map[string]any{"name": pname}}); err != nil {
				return err
			}
		}
		tname := fmt.Sprintf("region %d", tr.tid-1)
		if tr.tid == 0 {
			tname = "ctl"
		}
		if err := put(chromeEvent{Ph: "M", Pid: tr.pid, Tid: tr.tid, Name: "thread_name",
			Args: map[string]any{"name": tname}}); err != nil {
			return err
		}
	}

	for _, e := range events {
		ce := chromeEvent{
			Pid:  e.Member + 1,
			Tid:  e.Region + 1,
			Ts:   usec(int64(e.Ts)),
			Cat:  e.Kind.String(),
			Name: e.Kind.String(),
		}
		if e.Name != "" {
			ce.Name = e.Kind.String() + " " + e.Name
		}
		args := map[string]any{}
		if e.ID != 0 {
			args["id"] = e.ID
		}
		if e.Name != "" {
			args["name"] = e.Name
		}
		if e.Arg != 0 {
			args["arg"] = e.Arg
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if e.Dur > 0 {
			d := usec(int64(e.Dur))
			ce.Ph, ce.Dur = "X", &d
		} else {
			ce.Ph, ce.S = "i", "t"
		}
		if err := put(ce); err != nil {
			return err
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}
