package uart

import (
	"bytes"
	"testing"
)

func TestTransmit(t *testing.T) {
	u := New()
	for _, b := range []byte("hello") {
		u.Write(RegTX, uint64(b), 1)
	}
	if !bytes.Equal(u.Transmitted(), []byte("hello")) {
		t.Fatalf("tx = %q", u.Transmitted())
	}
	if u.TxCount() != 5 {
		t.Fatalf("tx count = %d", u.TxCount())
	}
	u.Write(RegCTRL, 1, 4) // clear
	if len(u.Transmitted()) != 0 {
		t.Fatal("ctrl reset did not clear tx buffer")
	}
}

func TestReceive(t *testing.T) {
	u := New()
	if s, _ := u.Read(RegSTAT, 4); s&StatRXValid != 0 {
		t.Fatal("RX valid with empty queue")
	}
	u.Inject([]byte{0x41, 0x42})
	if s, _ := u.Read(RegSTAT, 4); s&StatRXValid == 0 {
		t.Fatal("RX not valid after inject")
	}
	v, _ := u.Read(RegRX, 1)
	if v != 0x41 {
		t.Fatalf("rx = %#x", v)
	}
	v, _ = u.Read(RegRX, 1)
	if v != 0x42 {
		t.Fatalf("rx = %#x", v)
	}
	if s, _ := u.Read(RegSTAT, 4); s&StatRXValid != 0 {
		t.Fatal("RX valid after drain")
	}
	if s, _ := u.Read(RegSTAT, 4); s&StatTXEmpty == 0 {
		t.Fatal("TX should always be ready in this model")
	}
}
