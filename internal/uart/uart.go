// Package uart models the serial port of the generic architecture's
// external communication unit (§2.1): an OPB UART used for data transfer,
// control and debugging from a host computer.
package uart

import "bytes"

// Register offsets (UART-Lite style).
const (
	RegRX   = 0x00 // receive data (read)
	RegTX   = 0x04 // transmit data (write)
	RegSTAT = 0x08 // status (read)
	RegCTRL = 0x0C // control (write)
)

// Status bits.
const (
	StatRXValid = 1 << 0
	StatTXEmpty = 1 << 2
)

// UART is a simple serial port model. Transmitted bytes are collected in a
// buffer a test (or the host side of an example) can read; received bytes
// are injected with Inject.
type UART struct {
	tx bytes.Buffer
	rx []byte

	txCount uint64
}

// New returns an idle UART.
func New() *UART { return &UART{} }

// Name implements bus.Slave.
func (u *UART) Name() string { return "opb-uart" }

// Read implements bus.Slave.
func (u *UART) Read(addr uint32, size int) (uint64, int) {
	switch addr {
	case RegRX:
		if len(u.rx) == 0 {
			return 0, 1
		}
		v := uint64(u.rx[0])
		u.rx = u.rx[1:]
		return v, 1
	case RegSTAT:
		s := uint64(StatTXEmpty)
		if len(u.rx) > 0 {
			s |= StatRXValid
		}
		return s, 1
	default:
		return 0, 1
	}
}

// Write implements bus.Slave.
func (u *UART) Write(addr uint32, val uint64, size int) int {
	switch addr {
	case RegTX:
		u.tx.WriteByte(byte(val))
		u.txCount++
	case RegCTRL:
		if val&1 != 0 {
			u.tx.Reset()
		}
	}
	return 1
}

// Inject queues bytes on the receive side (host → board).
func (u *UART) Inject(data []byte) { u.rx = append(u.rx, data...) }

// Transmitted returns everything the software wrote to TX.
func (u *UART) Transmitted() []byte { return u.tx.Bytes() }

// TxCount returns the number of transmitted bytes.
func (u *UART) TxCount() uint64 { return u.txCount }
