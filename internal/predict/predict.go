// Package predict guesses which module a workload will request next, so a
// prefetching scheduler can configure an idle dynamic area before the
// request arrives — the overlap of reconfiguration with computation that
// hides the ICAP stream time from the request critical path.
//
// Predictors train online from the scheduler's arrival stream: every
// submitted request's module is Observed, and Rank returns the most likely
// next modules. Two predictors are registered: "freq" ranks modules by
// their overall request frequency, "markov" conditions a first-order
// transition table on the last observed module and falls back to frequency
// while a row is still cold. Both are deterministic functions of the
// observation history (ties break lexicographically) and safe for
// concurrent use.
package predict

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Predictor guesses the next requested module from the observed stream.
type Predictor interface {
	Name() string
	// Observe records one request arrival.
	Observe(module string)
	// Rank returns up to k distinct modules, most likely next first.
	Rank(k int) []string
	// Prob estimates the probability that the next request names module
	// (0 when nothing has been observed).
	Prob(module string) float64
}

// New returns a fresh predictor by name ("" means markov). Predictors are
// stateful, so every scheduler gets its own instance.
func New(name string) (Predictor, error) {
	switch name {
	case "", "markov":
		return &markov{freq: freq{counts: make(map[string]uint64)},
			rows: make(map[string]*freq)}, nil
	case "freq":
		return &freq{counts: make(map[string]uint64)}, nil
	}
	return nil, fmt.Errorf("predict: unknown predictor %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the registered predictors, sorted.
func Names() []string { return []string{"freq", "markov"} }

// freq ranks modules by their overall request frequency — the stateless
// baseline, and the fallback for cold markov rows.
type freq struct {
	mu     sync.Mutex
	counts map[string]uint64
	total  uint64
}

func (f *freq) Name() string { return "freq" }

func (f *freq) Observe(module string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[module]++
	f.total++
}

func (f *freq) Rank(k int) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return rankCounts(f.counts, k)
}

func (f *freq) Prob(module string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total == 0 {
		return 0
	}
	return float64(f.counts[module]) / float64(f.total)
}

// rankCounts orders modules by count descending, ties lexicographically.
func rankCounts(counts map[string]uint64, k int) []string {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	if k >= 0 && len(names) > k {
		names = names[:k]
	}
	return names
}

// markovMinRow is the observation count below which a markov row is
// considered cold and the overall frequency ranking is used instead.
const markovMinRow = 6

// markovShrink damps a row's conditional probabilities toward the overall
// frequency until the row has seen comparably many observations: a row of
// three samples claiming certainty is far more often sampling noise than
// structure, and a prefetcher acting on it evicts residents it should not.
// A genuinely structured stream (strict alternation) still converges to
// confident conditionals as its rows grow.
const markovShrink = 16

// markov is a first-order Markov predictor: it counts (previous → next)
// module transitions and ranks by the row of the last observed module.
type markov struct {
	freq // overall counts, the cold-start fallback

	rowMu sync.Mutex
	rows  map[string]*freq
	last  string
}

func (m *markov) Name() string { return "markov" }

func (m *markov) Observe(module string) {
	m.freq.Observe(module)
	m.rowMu.Lock()
	defer m.rowMu.Unlock()
	if m.last != "" {
		row, ok := m.rows[m.last]
		if !ok {
			row = &freq{counts: make(map[string]uint64)}
			m.rows[m.last] = row
		}
		row.Observe(module)
	}
	m.last = module
}

// row returns the transition row of the last observed module, or nil while
// it is too cold to beat the frequency fallback.
func (m *markov) row() *freq {
	m.rowMu.Lock()
	defer m.rowMu.Unlock()
	row := m.rows[m.last]
	if row == nil {
		return nil
	}
	row.mu.Lock()
	cold := row.total < markovMinRow
	row.mu.Unlock()
	if cold {
		return nil
	}
	return row
}

// Rank orders every observed module by its shrunk conditional probability,
// so the ordering inherits the same noise damping as Prob: a markov
// predictor on a stream with no transition structure degrades gracefully
// to the frequency ranking instead of chasing sampling noise.
func (m *markov) Rank(k int) []string {
	if m.row() == nil {
		return m.freq.Rank(k)
	}
	m.freq.mu.Lock()
	names := make([]string, 0, len(m.freq.counts))
	for n := range m.freq.counts {
		names = append(names, n)
	}
	m.freq.mu.Unlock()
	probs := make(map[string]float64, len(names))
	for _, n := range names {
		probs[n] = m.Prob(n)
	}
	sort.Slice(names, func(i, j int) bool {
		if probs[names[i]] != probs[names[j]] {
			return probs[names[i]] > probs[names[j]]
		}
		return names[i] < names[j]
	})
	if k >= 0 && len(names) > k {
		names = names[:k]
	}
	return names
}

func (m *markov) Prob(module string) float64 {
	row := m.row()
	if row == nil {
		return m.freq.Prob(module)
	}
	row.mu.Lock()
	total := float64(row.total)
	row.mu.Unlock()
	w := total / (total + markovShrink)
	return w*row.Prob(module) + (1-w)*m.freq.Prob(module)
}
