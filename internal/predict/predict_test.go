package predict

import (
	"reflect"
	"sync"
	"testing"
)

func TestRegistry(t *testing.T) {
	for _, name := range []string{"", "markov", "freq"} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Error("unknown predictor accepted")
	}
	if names := Names(); !reflect.DeepEqual(names, []string{"freq", "markov"}) {
		t.Errorf("Names() = %v", names)
	}
}

func TestFreqRanksByCount(t *testing.T) {
	p, _ := New("freq")
	if got := p.Rank(3); len(got) != 0 {
		t.Fatalf("rank before any observation = %v", got)
	}
	for _, m := range []string{"a", "b", "b", "c", "c", "c"} {
		p.Observe(m)
	}
	if got := p.Rank(2); !reflect.DeepEqual(got, []string{"c", "b"}) {
		t.Errorf("Rank(2) = %v, want [c b]", got)
	}
	if got := p.Rank(10); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Errorf("Rank(10) = %v, want [c b a]", got)
	}
	if got := p.Prob("c"); got != 0.5 {
		t.Errorf("Prob(c) = %v, want 0.5", got)
	}
	if got := p.Prob("z"); got != 0 {
		t.Errorf("Prob(z) = %v, want 0", got)
	}
}

func TestFreqTiesAreLexicographic(t *testing.T) {
	p, _ := New("freq")
	for _, m := range []string{"z", "a", "m"} {
		p.Observe(m)
	}
	if got := p.Rank(3); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Errorf("Rank(3) = %v, want lexicographic tie order", got)
	}
}

// TestMarkovLearnsAlternation feeds a strict a,b,a,b,... stream: once the
// rows are warm, the predictor must flip its top guess with each arrival,
// which a frequency predictor cannot do.
func TestMarkovLearnsAlternation(t *testing.T) {
	p, _ := New("markov")
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			p.Observe("a")
		} else {
			p.Observe("b")
		}
	}
	// Last observation was "b": next must be "a".
	if got := p.Rank(1); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("after ...a,b Rank(1) = %v, want [a]", got)
	}
	// The conditional is shrunk toward the 0.5 overall frequency while the
	// row is small, but must already dominate it — and its complement.
	if got := p.Prob("a"); got <= 0.5 || got > 1 {
		t.Errorf("Prob(a) = %v, want in (0.5, 1]", got)
	}
	if pa, pb := p.Prob("a"), p.Prob("b"); pa <= pb {
		t.Errorf("Prob(a)=%v not above Prob(b)=%v after alternation training", pa, pb)
	}
	p.Observe("a")
	if got := p.Rank(1); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("after ...b,a Rank(1) = %v, want [b]", got)
	}
}

// TestMarkovColdRowFallsBack: with no transitions observed out of the last
// module, the overall frequency ranking is used.
func TestMarkovColdRowFallsBack(t *testing.T) {
	p, _ := New("markov")
	for _, m := range []string{"x", "x", "x", "x", "x", "x", "x", "y"} {
		p.Observe(m)
	}
	// Row for "y" is empty; fall back to frequency: x dominates.
	if got := p.Rank(1); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("cold-row Rank(1) = %v, want [x]", got)
	}
}

// TestMarkovRanksBeyondRow: a warm row that has only ever seen one
// successor still ranks every observed module, strongest first, without
// duplicates — a prefetcher asking for more candidates than the row has
// seen gets useful guesses.
func TestMarkovRanksBeyondRow(t *testing.T) {
	p, _ := New("markov")
	for i := 0; i < 9; i++ {
		p.Observe("a")
		p.Observe("b")
	}
	p.Observe("c")
	p.Observe("a")
	// Row "a" only knows b; asking for 3 fills in from overall frequency.
	got := p.Rank(3)
	if len(got) != 3 || got[0] != "b" {
		t.Fatalf("Rank(3) = %v, want b first and 3 candidates", got)
	}
	seen := make(map[string]bool)
	for _, m := range got {
		if seen[m] {
			t.Fatalf("Rank(3) = %v contains duplicates", got)
		}
		seen[m] = true
	}
}

// TestConcurrentObserve exercises the predictors under the race detector.
func TestConcurrentObserve(t *testing.T) {
	for _, name := range Names() {
		p, _ := New(name)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				mods := []string{"a", "b", "c", "d"}
				for i := 0; i < 200; i++ {
					p.Observe(mods[(g+i)%len(mods)])
					p.Rank(2)
					p.Prob("a")
				}
			}(g)
		}
		wg.Wait()
		if got := p.Rank(4); len(got) != 4 {
			t.Errorf("%s: Rank(4) after concurrent training = %v", name, got)
		}
	}
}
