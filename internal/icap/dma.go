package icap

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/sim"
)

// dmaSetupCycles is the fixed descriptor-setup cost of one DMA transfer
// (fetching the descriptor and programming the engine).
const dmaSetupCycles = 32

// DMA is one region dock's configuration DMA engine: it master-reads a
// prepared stream from memory and feeds the configuration port without CPU
// stores, so sibling regions' loads on one member overlap in simulated time
// — each engine occupies its own port window while the CPU goes on
// dispatching.
//
// The engine's transfer model is deliberately simple and race-free: the
// stream CONTENT is applied to the configuration logic atomically when the
// transfer begins (the configuration sequence is indivisible — there is no
// observable intermediate state between Begin and the transfer's end), and
// only the TIME window [start, done) is what overlaps with sibling engines
// and CPU work. Begin returns that window; the caller settles it with the
// member's timeline when the result is needed.
//
// Unlike the CPU path, a DMA transfer of a compressed container is bound by
// the WIRE words: the in-engine decompressor performs masked frame writes,
// so KEEP words never transit the port. That makes compressed+DMA the fast
// path the S8 table measures.
type DMA struct {
	k      *sim.Kernel
	clk    *sim.Clock
	loader *bitstream.Loader

	busyUntil sim.Time
	transfers uint64
	words     uint64

	// obs, when set, observes every transfer's port window — the trace
	// spine renders it as a DMA-window span without icap depending on the
	// tracer package. Called under the same serialization as Begin.
	obs func(start, done sim.Time, words int, compressed bool)
}

// NewDMA returns a DMA engine feeding the device's configuration logic.
func NewDMA(k *sim.Kernel, clk *sim.Clock, loader *bitstream.Loader) *DMA {
	return &DMA{k: k, clk: clk, loader: loader}
}

// Stats reports completed transfers and wire words moved.
func (d *DMA) Stats() (transfers, words uint64) { return d.transfers, d.words }

// SetObserver installs the port-window observer; nil disables it.
func (d *DMA) SetObserver(fn func(start, done sim.Time, words int, compressed bool)) {
	d.obs = fn
}

// BusyUntil reports when the engine's current window ends (its own port is
// idle from then on).
func (d *DMA) BusyUntil() sim.Time { return d.busyUntil }

// Begin starts one transfer: the stream content is applied to the
// configuration logic now, and the engine's port window [start, done) is
// returned. start is the later of now and the end of the engine's previous
// window; done adds the descriptor setup and the per-wire-word drain. On a
// configuration error the loader is reset (the engine aborts the transfer
// cleanly) and the window still stands — the port was occupied until the
// error was raised.
func (d *DMA) Begin(words []uint32, compressed bool) (start, done sim.Time, err error) {
	start = d.k.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done = start + d.clk.Cycles(uint64(dmaSetupCycles+4*len(words)))
	d.busyUntil = done
	d.transfers++
	d.words += uint64(len(words))
	if d.obs != nil {
		d.obs(start, done, len(words), compressed)
	}
	if err := d.feed(words, compressed); err != nil {
		d.loader.Reset()
		return start, done, err
	}
	return start, done, nil
}

func (d *DMA) feed(words []uint32, compressed bool) error {
	if compressed {
		dec := bitstream.NewDecoder(d.loader)
		for _, w := range words {
			if _, err := dec.WriteWord(w); err != nil {
				return err
			}
			if err := d.loader.Err(); err != nil {
				return err
			}
		}
		if !dec.Done() {
			return fmt.Errorf("icap: dma: compressed container incomplete (%d words decoded)", dec.Emitted())
		}
	} else {
		for _, w := range words {
			if err := d.loader.WriteWord(w); err != nil {
				return err
			}
		}
	}
	if err := d.loader.Err(); err != nil {
		return err
	}
	if !d.loader.Done() {
		return fmt.Errorf("icap: dma: configuration sequence did not complete")
	}
	return nil
}
