// Package icap models the OPB HWICAP: the configuration memory controller
// that lets the embedded CPU change the FPGA's configuration from inside,
// through the Internal Configuration Access Port (§3.1). Software writes
// stream words into the write FIFO; an internal engine feeds them to the
// configuration logic at one byte per ICAP clock.
package icap

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/sim"
)

// Register offsets.
const (
	RegWriteFIFO = 0x00 // write: one stream word
	RegStatus    = 0x04 // read: status bits
	RegControl   = 0x08 // write: control bits
)

// Status bits.
const (
	StatDone  = 1 << 0 // last configuration sequence completed
	StatError = 1 << 1 // configuration error (sticky)
	StatBusy  = 1 << 2 // ICAP engine draining
)

// Control bits.
const (
	CtrlReset = 1 << 0 // reset the configuration logic interface
)

// HWICAP is the OPB slave wrapping the ICAP.
type HWICAP struct {
	k      *sim.Kernel
	clk    *sim.Clock // ICAP clock (the OPB clock in both systems)
	loader *bitstream.Loader

	// bufWords is the internal BRAM buffer depth; the engine drains it at
	// bytesPerCycle bytes per ICAP cycle.
	bufWords int

	// dec, when armed, sits between the write FIFO and the configuration
	// logic: software pushes compressed container words and the decoder
	// expands them in flight. The drain time is charged per DECODED word —
	// the byte-wide configuration port consumes every expanded word at the
	// same 4 cycles/word, so compression shrinks the wire traffic, not the
	// CPU-path port time.
	dec    *bitstream.Decoder
	decErr error

	busyUntil sim.Time
	words     uint64
	stalls    uint64
}

// New returns a HWICAP bound to the device's configuration loader.
func New(k *sim.Kernel, clk *sim.Clock, loader *bitstream.Loader) *HWICAP {
	return &HWICAP{k: k, clk: clk, loader: loader, bufWords: 512}
}

// Name implements bus.Slave.
func (h *HWICAP) Name() string { return "opb-hwicap" }

// Loader exposes the configuration logic (for binding callbacks).
func (h *HWICAP) Loader() *bitstream.Loader { return h.loader }

// WordsWritten reports how many stream words software pushed.
func (h *HWICAP) WordsWritten() uint64 { return h.words }

// ArmDecoder inserts a fresh compressed-stream decoder in front of the
// configuration logic. Subsequent FIFO writes are container words.
func (h *HWICAP) ArmDecoder() {
	h.dec = bitstream.NewDecoder(h.loader)
	h.decErr = nil
}

// DisarmDecoder removes the decoder and reports whether the container
// decoded completely and cleanly. Decode errors are also visible in the
// status register while the decoder is armed.
func (h *HWICAP) DisarmDecoder() error {
	d := h.dec
	h.dec = nil
	err := h.decErr
	h.decErr = nil
	if err != nil {
		return err
	}
	if d == nil {
		return nil
	}
	if err := d.Err(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("icap: compressed container incomplete (%d words decoded)", d.Emitted())
	}
	return nil
}

// Read implements bus.Slave.
func (h *HWICAP) Read(addr uint32, size int) (uint64, int) {
	switch addr {
	case RegStatus:
		var s uint64
		if h.loader.Done() {
			s |= StatDone
		}
		if h.loader.Err() != nil || h.decErr != nil {
			s |= StatError
		}
		if h.k.Now() < h.busyUntil {
			s |= StatBusy
		}
		return s, 1
	default:
		return 0, 1
	}
}

// Write implements bus.Slave.
func (h *HWICAP) Write(addr uint32, val uint64, size int) int {
	switch addr {
	case RegWriteFIFO:
		h.words++
		// The engine needs 4 ICAP cycles per word (byte-wide port). If the
		// write FIFO backlog exceeds the buffer, the OPB side stalls.
		drain := h.clk.Cycles(4)
		now := h.k.Now()
		if h.busyUntil < now {
			h.busyUntil = now
		}
		// The configuration logic consumes the word; errors are reported
		// via the status register, as on hardware. With the decoder armed
		// the port drains one slot per DECODED word the container word
		// expanded into.
		consumed := 1
		if h.dec != nil {
			n, err := h.dec.WriteWord(uint32(val))
			if err != nil && h.decErr == nil {
				h.decErr = err
			}
			consumed = n
		} else {
			_ = h.loader.WriteWord(uint32(val))
		}
		h.busyUntil += sim.Time(consumed) * drain
		waits := 1
		if backlog := h.busyUntil - now; backlog > sim.Time(h.bufWords)*drain {
			extra := int(h.clk.CyclesIn(backlog - sim.Time(h.bufWords)*drain))
			waits += extra
			h.stalls++
		}
		return waits
	case RegControl:
		if val&CtrlReset != 0 {
			h.loader.Reset()
			h.dec = nil
			h.decErr = nil
		}
		return 1
	default:
		return 1
	}
}
