package icap

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/sim"
)

func buildStream(t *testing.T, dev *fabric.Device) *bitstream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	frame := make([]uint32, dev.FrameLen())
	for i := range frame {
		frame[i] = rng.Uint32()
	}
	s, err := bitstream.Build(dev, []bitstream.FrameRun{
		{Start: fabric.FAR{Block: fabric.BlockCLB, Major: 2, Minor: 0}, Frames: [][]uint32{frame}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigureThroughHWICAP(t *testing.T) {
	dev := fabric.XC2VP7()
	cm := fabric.NewConfigMemory(dev)
	loader := bitstream.NewLoader(cm)
	k := sim.NewKernel()
	clk := sim.NewClock("opb", 50_000_000)
	h := New(k, clk, loader)

	s := buildStream(t, dev)
	for _, w := range s.Words {
		h.Write(RegWriteFIFO, uint64(w), 4)
	}
	st, _ := h.Read(RegStatus, 4)
	if st&StatDone == 0 {
		t.Fatal("status done not set after full stream")
	}
	if st&StatError != 0 {
		t.Fatal("status error set for valid stream")
	}
	if h.WordsWritten() != uint64(len(s.Words)) {
		t.Fatalf("words = %d", h.WordsWritten())
	}
}

func TestErrorSurfacesInStatus(t *testing.T) {
	dev := fabric.XC2VP7()
	loader := bitstream.NewLoader(fabric.NewConfigMemory(dev))
	k := sim.NewKernel()
	h := New(k, sim.NewClock("opb", 50_000_000), loader)

	s := buildStream(t, dev)
	// Corrupt a payload word to trip the CRC.
	s.Words[len(s.Words)/2] ^= 1
	for _, w := range s.Words {
		h.Write(RegWriteFIFO, uint64(w), 4)
	}
	st, _ := h.Read(RegStatus, 4)
	if st&StatError == 0 {
		t.Fatal("status error not set after corrupt stream")
	}
	// Control reset clears the error.
	h.Write(RegControl, CtrlReset, 4)
	st, _ = h.Read(RegStatus, 4)
	if st&StatError != 0 {
		t.Fatal("error not cleared by reset")
	}
}

func TestBusyTracksDrain(t *testing.T) {
	dev := fabric.XC2VP7()
	loader := bitstream.NewLoader(fabric.NewConfigMemory(dev))
	k := sim.NewKernel()
	clk := sim.NewClock("opb", 50_000_000)
	h := New(k, clk, loader)
	h.Write(RegWriteFIFO, uint64(bitstream.DummyWord), 4)
	if st, _ := h.Read(RegStatus, 4); st&StatBusy == 0 {
		t.Fatal("not busy right after a word")
	}
	k.Advance(clk.Cycles(16))
	if st, _ := h.Read(RegStatus, 4); st&StatBusy != 0 {
		t.Fatal("still busy after drain time")
	}
}
