package platform

import (
	"sync"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/busmacro"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dock"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/hwcore"
	"repro/internal/icap"
	"repro/internal/intc"
	"repro/internal/memctl"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/uart"
)

// System is one fully assembled platform.
type System struct {
	Name string
	Is64 bool

	K      *sim.Kernel
	CPUClk *sim.Clock
	BusClk *sim.Clock
	CPU    *cpu.CPU

	PLB    *bus.Bus
	OPB    *bus.Bus
	Bridge *bus.Bridge

	BRAM   *memctl.Memory
	ExtMem *memctl.Memory // SRAM (Sys32) or DDR (Sys64)

	UART *uart.UART
	GPIO *GPIO
	INTC *intc.Controller // nil on Sys32

	Dock32 *dock.OPBDock // nil on Sys64
	Dock64 *dock.PLBDock // nil on Sys32

	Dev    *fabric.Device
	Region fabric.Region
	CM     *fabric.ConfigMemory
	ICAP   *icap.HWICAP
	Mgr    *core.Manager

	// Planner chooses the cheapest safe configuration stream for every
	// module transition (differential when the resident state is
	// authoritative, complete otherwise); planning toggles whether the
	// load path consults it.
	Planner  *plan.Planner
	planning bool

	// Skipped lists modules that do not fit the dynamic area (SHA-1 on the
	// 32-bit system).
	Skipped []string

	Timing Timing

	// mu serializes simulated activity. A System models one board: its
	// kernel, CPU and manager are single-threaded, so concurrent users
	// (the scheduler's pool workers) must go through Execute/Resident,
	// which take this lock.
	mu sync.Mutex
}

// GPIO is the general-purpose I/O controller of the 32-bit system (LEDs and
// push buttons, §3.1).
type GPIO struct {
	LEDs    uint32
	Buttons uint32
}

// Name implements bus.Slave.
func (g *GPIO) Name() string { return "opb-gpio" }

// Read implements bus.Slave.
func (g *GPIO) Read(addr uint32, size int) (uint64, int) {
	if addr == 4 {
		return uint64(g.Buttons), 1
	}
	return uint64(g.LEDs), 1
}

// Write implements bus.Slave.
func (g *GPIO) Write(addr uint32, val uint64, size int) int {
	if addr == 0 {
		g.LEDs = uint32(val)
	}
	return 1
}

// NewSys32 assembles the 32-bit system of §3: XC2VP7, CPU at 200 MHz, PLB
// and OPB at 50 MHz, external SRAM and the dynamic region's OPB Dock behind
// the PLB→OPB bridge.
func NewSys32() (*System, error) {
	return build("sys32", false, Sys32Timing())
}

// NewSys64 assembles the 64-bit system of §4: XC2VP30, CPU at 300 MHz,
// buses at 100 MHz, DDR and the PLB Dock (with DMA, output FIFO and
// interrupt generator) directly on the 64-bit PLB.
func NewSys64() (*System, error) {
	return build("sys64", true, Sys64Timing())
}

func build(name string, is64 bool, tm Timing) (*System, error) {
	s := &System{Name: name, Is64: is64, Timing: tm}
	s.K = sim.NewKernel()
	s.CPUClk = sim.NewClock("cpu", tm.CPUHz)
	s.BusClk = sim.NewClock("bus", tm.BusHz)

	s.PLB = bus.New(name+"-plb", s.K, s.BusClk, 8, tm.PLB)
	s.OPB = bus.New(name+"-opb", s.K, s.BusClk, 4, tm.OPB)
	s.Bridge = bus.NewBridge(s.PLB, s.OPB, bridgeBase, tm.BridgeRequestCycles, tm.BridgePostDepth)

	// Fabric and configuration path.
	var macro *busmacro.Macro
	if is64 {
		s.Dev, s.Region, macro = fabric.XC2VP30(), fabric.DynamicRegion64(), busmacro.Dock64()
	} else {
		s.Dev, s.Region, macro = fabric.XC2VP7(), fabric.DynamicRegion32(), busmacro.Dock32()
	}
	if err := s.Dev.Validate(); err != nil {
		return nil, err
	}
	if err := s.Dev.ValidateRegion(s.Region); err != nil {
		return nil, err
	}
	s.CM = fabric.NewConfigMemory(s.Dev)
	loadStaticDesign(s.CM, s.Region)
	baseline := s.CM.Clone()
	loader := bitstream.NewLoader(s.CM)
	s.ICAP = icap.New(s.K, s.BusClk, loader)

	// Memories.
	s.BRAM = memctl.NewBRAM(BRAMSize)
	if err := s.PLB.Map(AddrBRAM, BRAMSize, s.BRAM); err != nil {
		return nil, err
	}
	if is64 {
		s.ExtMem = memctl.NewDDR()
		if err := s.PLB.Map(AddrDDR, uint32(s.ExtMem.Size()), s.ExtMem); err != nil {
			return nil, err
		}
	} else {
		s.ExtMem = memctl.NewSRAM()
		if err := s.OPB.Map(AddrSRAM, uint32(s.ExtMem.Size()), s.ExtMem); err != nil {
			return nil, err
		}
	}

	// OPB peripherals (both systems reach them through the bridge).
	s.UART = uart.New()
	if err := s.OPB.Map(AddrUART, 0x100, s.UART); err != nil {
		return nil, err
	}
	if err := s.OPB.Map(AddrICAP, 0x100, s.ICAP); err != nil {
		return nil, err
	}
	if is64 {
		s.INTC = intc.New()
		if err := s.OPB.Map(AddrINTC, 0x100, s.INTC); err != nil {
			return nil, err
		}
	} else {
		s.GPIO = &GPIO{}
		if err := s.OPB.Map(AddrGPIO, 0x100, s.GPIO); err != nil {
			return nil, err
		}
	}
	if err := s.PLB.Map(bridgeBase, bridgeSize, s.Bridge); err != nil {
		return nil, err
	}

	// Docks.
	var bind func(hw.Core)
	if is64 {
		s.Dock64 = dock.NewPLBDock(s.K, s.PLB, s.INTC, DockIRQLine, tm.DockReadWaits, tm.DockWriteWaits)
		if err := s.PLB.Map(AddrDock64, 1<<16, s.Dock64); err != nil {
			return nil, err
		}
		bind = s.Dock64.SetCore
	} else {
		s.Dock32 = dock.NewOPBDock(tm.DockReadWaits, tm.DockWriteWaits)
		if err := s.OPB.Map(AddrDock32, 1<<12, s.Dock32); err != nil {
			return nil, err
		}
		bind = s.Dock32.SetCore
	}

	// CPU.
	params := cpu.DefaultParams(s.CPUClk)
	if !tm.DCacheOn {
		params.CacheSize = 0
	}
	s.CPU = cpu.New(s.K, params, s.PLB)
	if tm.DCacheOn {
		s.CPU.MapCacheable(AddrDDR, uint32(s.ExtMem.Size()))
	}
	// Device windows are guarded storage: stores to them do not post.
	s.CPU.MapGuarded(AddrDock32, 0x0500_0000) // dock, HWICAP, UART, GPIO, INTC
	if is64 {
		s.CPU.MapGuarded(AddrDock64, 1<<16)
	}

	// Reconfiguration manager.
	asm, err := bitlinker.New(s.Dev, s.Region, baseline, macro)
	if err != nil {
		return nil, err
	}
	s.Mgr, err = core.NewManager(core.Config{
		Device:    s.Dev,
		Region:    s.Region,
		ConfigMem: s.CM,
		Baseline:  baseline,
		Assembler: asm,
		Loader:    loader,
		CPU:       s.CPU,
		ICAPBase:  AddrICAP,
		Bind:      bind,
		Kernel:    s.K,
	})
	if err != nil {
		return nil, err
	}
	for _, spec := range hwcore.Specs() {
		comp, err := hwcore.BuildComponent(spec, s.Dev, s.Region, macro)
		if err != nil {
			s.Skipped = append(s.Skipped, spec.Name)
			continue
		}
		factory := spec.New
		if err := s.Mgr.Register(comp, factory); err != nil {
			return nil, err
		}
	}
	s.Planner = plan.New(s.Mgr)
	s.planning = true
	return s, nil
}

// loadStaticDesign fills the configuration memory with the static design's
// image: deterministic content everywhere except the dynamic region band,
// which the initial configuration leaves blank.
func loadStaticDesign(cm *fabric.ConfigMemory, region fabric.Region) {
	dev := cm.Device()
	lo, hi := dev.RowWordRange(region.Row0, region.H)
	frame := make([]uint32, dev.FrameLen())
	bcols := make(map[int]bool)
	for _, b := range dev.BRAMColumns(region) {
		bcols[b] = true
	}
	fill := func(far fabric.FAR, blankBand bool) {
		seed := uint64(far.Word()) ^ 0x57A71C_DE5160
		for i := range frame {
			if blankBand && i >= lo && i < hi {
				frame[i] = 0
				continue
			}
			frame[i] = staticWord(seed, i)
		}
		if err := cm.WriteFrame(far, frame); err != nil {
			panic(err)
		}
	}
	for col := 0; col < dev.Cols; col++ {
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			fill(fabric.FAR{Block: fabric.BlockCLB, Major: col, Minor: minor}, region.ContainsCol(col))
		}
	}
	for bcol := range dev.BRAMColPos {
		for minor := 0; minor < fabric.FramesPerBRAMColumn; minor++ {
			fill(fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: minor}, bcols[bcol])
		}
	}
}

func staticWord(seed uint64, i int) uint32 {
	x := seed + uint64(i)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return uint32(x ^ (x >> 31))
}

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.K.Now() }

// Measure runs fn and returns the simulated time it consumed.
func (s *System) Measure(fn func()) sim.Time {
	start := s.K.Now()
	fn()
	return s.K.Now() - start
}

// MemBase returns the external memory's bus address.
func (s *System) MemBase() uint32 {
	if s.Is64 {
		return AddrDDR
	}
	return AddrSRAM
}

// DockBase returns the dock window's bus address.
func (s *System) DockBase() uint32 {
	if s.Is64 {
		return AddrDock64
	}
	return AddrDock32
}

// DockData returns the dock data register's bus address.
func (s *System) DockData() uint32 { return s.DockBase() + dock.RegData }

// Core returns the circuit currently bound to the dock.
func (s *System) Core() hw.Core {
	if s.Is64 {
		return s.Dock64.Core()
	}
	return s.Dock32.Core()
}

// LoadModule reconfigures the dynamic area with the named module, letting
// the planner choose the cheapest safe stream (a no-op when resident, a
// differential transition when the tracked state is authoritative, the
// complete stream otherwise), and reports what was streamed. It takes the
// system lock, so Status/Resident/PlanFor stay safe concurrently.
func (s *System) LoadModule(name string) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadWith(name, s.planning)
}

// LoadComplete reconfigures the dynamic area with the module's complete
// configuration stream regardless of planning mode — the state-independent
// worst case (still a no-op when the module is already resident).
func (s *System) LoadComplete(name string) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadWith(name, false)
}

// WriteMem loads bytes into external memory functionally (test and
// benchmark setup; the board would receive them over the UART or JTAG).
func (s *System) WriteMem(addr uint32, data []byte) error {
	return s.ExtMem.LoadBytes(addr-s.MemBase(), data)
}

// ReadMem copies bytes out of external memory functionally.
func (s *System) ReadMem(addr uint32, size int) ([]byte, error) {
	return s.ExtMem.ReadBytes(addr-s.MemBase(), size)
}
