package platform

import (
	"fmt"
	"sync"

	"repro/internal/bitlinker"
	"repro/internal/bitstream"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dock"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/hwcore"
	"repro/internal/icap"
	"repro/internal/intc"
	"repro/internal/memctl"
	"repro/internal/plan"
	"repro/internal/region"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uart"
)

// regionSlot is one dynamic area of the system's floorplan: its own dock
// (at a strided bus address and interrupt line), reconfiguration manager,
// stream planner and planning mode. All slots share the device's single
// configuration port — streams into sibling regions serialize on the
// system lock like every other simulated activity.
type regionSlot struct {
	area     region.Area
	mgr      *core.Manager
	planner  *plan.Planner
	dockBase uint32
	irqLine  int
	dock32   *dock.OPBDock
	dock64   *dock.PLBDock
	// dma is this region dock's configuration DMA engine. Engines share the
	// device's single configuration logic, but each keeps its own port
	// window, so sibling regions' transfers overlap in simulated time.
	dma      *icap.DMA
	planning bool
	skipped  []string
}

func (rs *regionSlot) bind(c hw.Core) {
	if rs.dock64 != nil {
		rs.dock64.SetCore(c)
		return
	}
	rs.dock32.SetCore(c)
}

func (rs *regionSlot) core() hw.Core {
	if rs.dock64 != nil {
		return rs.dock64.Core()
	}
	return rs.dock32.Core()
}

// System is one fully assembled platform.
type System struct {
	Name string
	Is64 bool

	K      *sim.Kernel
	CPUClk *sim.Clock
	BusClk *sim.Clock
	CPU    *cpu.CPU

	PLB    *bus.Bus
	OPB    *bus.Bus
	Bridge *bus.Bridge

	BRAM   *memctl.Memory
	ExtMem *memctl.Memory // SRAM (Sys32) or DDR (Sys64)

	UART *uart.UART
	GPIO *GPIO
	INTC *intc.Controller // nil on Sys32

	Dock32 *dock.OPBDock // region 0's dock; nil on Sys64
	Dock64 *dock.PLBDock // region 0's dock; nil on Sys32

	Dev  *fabric.Device
	CM   *fabric.ConfigMemory
	ICAP *icap.HWICAP

	// Floorplan is the device's set of dynamic areas. Region, Mgr and
	// Planner alias region 0 — the paper's fixed dynamic area, and the
	// whole fabric of a single-region system.
	Floorplan region.Floorplan
	Region    fabric.Region
	Mgr       *core.Manager
	Planner   *plan.Planner

	regions []*regionSlot
	// active is the region index task code drives through DockBase/
	// DockData/DockIRQ/Core; ExecuteOn sets it under the system lock.
	active int

	// Skipped lists modules that do not fit region 0 (SHA-1 on the 32-bit
	// system). Per-region fit lives on the slots (SupportsOn).
	Skipped []string

	Timing Timing

	// mu serializes simulated activity. A System models one board: its
	// kernel, CPU and manager are single-threaded, so concurrent users
	// (the scheduler's pool workers) must go through Execute/Resident,
	// which take this lock. Two regions of one board never compute
	// simultaneously — sibling activity interleaves on this lock.
	mu sync.Mutex

	// tracer, when set by SetTracer, receives plan decisions, hazard
	// verdicts, demotions and DMA port windows from this board's regions,
	// stamped with the member's simulated kernel time; traceMember is the
	// pool member ID the events carry.
	tracer      *trace.Tracer
	traceMember int32
}

// GPIO is the general-purpose I/O controller of the 32-bit system (LEDs and
// push buttons, §3.1).
type GPIO struct {
	LEDs    uint32
	Buttons uint32
}

// Name implements bus.Slave.
func (g *GPIO) Name() string { return "opb-gpio" }

// Read implements bus.Slave.
func (g *GPIO) Read(addr uint32, size int) (uint64, int) {
	if addr == 4 {
		return uint64(g.Buttons), 1
	}
	return uint64(g.LEDs), 1
}

// Write implements bus.Slave.
func (g *GPIO) Write(addr uint32, val uint64, size int) int {
	if addr == 0 {
		g.LEDs = uint32(val)
	}
	return 1
}

// NewSys32 assembles the 32-bit system of §3: XC2VP7, CPU at 200 MHz, PLB
// and OPB at 50 MHz, external SRAM and the dynamic region's OPB Dock behind
// the PLB→OPB bridge.
func NewSys32() (*System, error) {
	return build("sys32", false, Sys32Timing(), region.Single32())
}

// NewSys64 assembles the 64-bit system of §4: XC2VP30, CPU at 300 MHz,
// buses at 100 MHz, DDR and the PLB Dock (with DMA, output FIFO and
// interrupt generator) directly on the 64-bit PLB.
func NewSys64() (*System, error) {
	return build("sys64", true, Sys64Timing(), region.Single64())
}

// NewSys32N assembles the 32-bit system with its dynamic area split into n
// independently reconfigurable regions (n = 1 is exactly NewSys32).
func NewSys32N(n int) (*System, error) {
	fp, err := region.Default(false, n)
	if err != nil {
		return nil, err
	}
	return build(sysName("sys32", n), false, Sys32Timing(), fp)
}

// NewSys64N assembles the 64-bit system with its dynamic area split into n
// independently reconfigurable regions (n = 1 is exactly NewSys64).
func NewSys64N(n int) (*System, error) {
	fp, err := region.Default(true, n)
	if err != nil {
		return nil, err
	}
	return build(sysName("sys64", n), true, Sys64Timing(), fp)
}

// NewSystem assembles a system over an explicit floorplan — the escape
// hatch benchmark pools use to compare region granularities at equal total
// fabric.
func NewSystem(is64 bool, fp region.Floorplan) (*System, error) {
	name, tm := "sys32", Sys32Timing()
	if is64 {
		name, tm = "sys64", Sys64Timing()
	}
	return build(sysName(name, len(fp.Areas)), is64, tm, fp)
}

func sysName(base string, n int) string {
	if n == 1 {
		return base
	}
	return fmt.Sprintf("%sx%d", base, n)
}

// Dock window strides: region i's dock sits i windows above region 0's.
const (
	dock32Stride = 1 << 12
	dock64Stride = 1 << 16
)

func build(name string, is64 bool, tm Timing, fp region.Floorplan) (*System, error) {
	s := &System{Name: name, Is64: is64, Timing: tm, Floorplan: fp}
	s.K = sim.NewKernel()
	s.CPUClk = sim.NewClock("cpu", tm.CPUHz)
	s.BusClk = sim.NewClock("bus", tm.BusHz)

	s.PLB = bus.New(name+"-plb", s.K, s.BusClk, 8, tm.PLB)
	s.OPB = bus.New(name+"-opb", s.K, s.BusClk, 4, tm.OPB)
	s.Bridge = bus.NewBridge(s.PLB, s.OPB, bridgeBase, tm.BridgeRequestCycles, tm.BridgePostDepth)

	// Fabric and configuration path.
	if is64 {
		s.Dev = fabric.XC2VP30()
	} else {
		s.Dev = fabric.XC2VP7()
	}
	if err := s.Dev.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(s.Dev); err != nil {
		return nil, err
	}
	s.Region = fp.Areas[0].R
	s.CM = fabric.NewConfigMemory(s.Dev)
	loadStaticDesign(s.CM, fp.Regions())
	baseline := s.CM.Clone()
	loader := bitstream.NewLoader(s.CM)
	s.ICAP = icap.New(s.K, s.BusClk, loader)

	// Memories.
	s.BRAM = memctl.NewBRAM(BRAMSize)
	if err := s.PLB.Map(AddrBRAM, BRAMSize, s.BRAM); err != nil {
		return nil, err
	}
	if is64 {
		s.ExtMem = memctl.NewDDR()
		if err := s.PLB.Map(AddrDDR, uint32(s.ExtMem.Size()), s.ExtMem); err != nil {
			return nil, err
		}
	} else {
		s.ExtMem = memctl.NewSRAM()
		if err := s.OPB.Map(AddrSRAM, uint32(s.ExtMem.Size()), s.ExtMem); err != nil {
			return nil, err
		}
	}

	// OPB peripherals (both systems reach them through the bridge).
	s.UART = uart.New()
	if err := s.OPB.Map(AddrUART, 0x100, s.UART); err != nil {
		return nil, err
	}
	if err := s.OPB.Map(AddrICAP, 0x100, s.ICAP); err != nil {
		return nil, err
	}
	if is64 {
		s.INTC = intc.New()
		if err := s.OPB.Map(AddrINTC, 0x100, s.INTC); err != nil {
			return nil, err
		}
	} else {
		s.GPIO = &GPIO{}
		if err := s.OPB.Map(AddrGPIO, 0x100, s.GPIO); err != nil {
			return nil, err
		}
	}
	if err := s.PLB.Map(bridgeBase, bridgeSize, s.Bridge); err != nil {
		return nil, err
	}

	// One dock per dynamic region, at strided windows and interrupt lines.
	for i, a := range fp.Areas {
		rs := &regionSlot{area: a, irqLine: DockIRQLine + i}
		if is64 {
			rs.dockBase = AddrDock64 + uint32(i)*dock64Stride
			rs.dock64 = dock.NewPLBDock(s.K, s.PLB, s.INTC, rs.irqLine, tm.DockReadWaits, tm.DockWriteWaits)
			if err := s.PLB.Map(rs.dockBase, dock64Stride, rs.dock64); err != nil {
				return nil, err
			}
		} else {
			rs.dockBase = AddrDock32 + uint32(i)*dock32Stride
			rs.dock32 = dock.NewOPBDock(tm.DockReadWaits, tm.DockWriteWaits)
			if err := s.OPB.Map(rs.dockBase, dock32Stride, rs.dock32); err != nil {
				return nil, err
			}
		}
		s.regions = append(s.regions, rs)
	}
	s.Dock32 = s.regions[0].dock32
	s.Dock64 = s.regions[0].dock64

	// CPU.
	params := cpu.DefaultParams(s.CPUClk)
	if !tm.DCacheOn {
		params.CacheSize = 0
	}
	s.CPU = cpu.New(s.K, params, s.PLB)
	if tm.DCacheOn {
		s.CPU.MapCacheable(AddrDDR, uint32(s.ExtMem.Size()))
	}
	// Device windows are guarded storage: stores to them do not post.
	s.CPU.MapGuarded(AddrDock32, 0x0500_0000) // docks, HWICAP, UART, GPIO, INTC
	if is64 {
		s.CPU.MapGuarded(AddrDock64, uint32(len(fp.Areas))*dock64Stride)
	}

	// One reconfiguration manager and planner per region. Every manager
	// registers the modules that fit its region; the §2.2 hazard gate and
	// resident tracking are therefore per region, and a sibling's
	// reconfiguration can neither demote this region's state nor read as
	// static corruption (AllRegions excludes every dynamic area from the
	// static hash).
	staticHashes := core.NewStaticHasher(loader, s.CM, fp.Regions())
	for _, rs := range s.regions {
		asm, err := bitlinker.New(s.Dev, rs.area.R, baseline, rs.area.Macro)
		if err != nil {
			return nil, err
		}
		rs.mgr, err = core.NewManager(core.Config{
			Device:       s.Dev,
			Region:       rs.area.R,
			AllRegions:   fp.Regions(),
			ConfigMem:    s.CM,
			Baseline:     baseline,
			Assembler:    asm,
			Loader:       loader,
			CPU:          s.CPU,
			ICAPBase:     AddrICAP,
			ICAP:         s.ICAP,
			Bind:         rs.bind,
			Kernel:       s.K,
			StaticHashes: staticHashes,
		})
		if err != nil {
			return nil, err
		}
		for _, spec := range hwcore.Specs() {
			comp, err := hwcore.BuildComponent(spec, s.Dev, rs.area.R, rs.area.Macro)
			if err != nil {
				rs.skipped = append(rs.skipped, spec.Name)
				continue
			}
			if err := rs.mgr.Register(comp, spec.New); err != nil {
				return nil, err
			}
		}
		rs.planner = plan.NewFor(rs.area.R.Name, rs.mgr)
		rs.planning = true
		rs.dma = icap.NewDMA(s.K, s.BusClk, loader)
	}
	s.Mgr = s.regions[0].mgr
	s.Planner = s.regions[0].planner
	s.Skipped = s.regions[0].skipped
	return s, nil
}

// loadStaticDesign fills the configuration memory with the static design's
// image: deterministic content everywhere except the dynamic region bands,
// which the initial configuration leaves blank. Every region blanks its
// own row band inside its own columns — the same per-column fill the
// single-region floorplan always used.
func loadStaticDesign(cm *fabric.ConfigMemory, regions []fabric.Region) {
	dev := cm.Device()
	type band struct{ lo, hi int }
	clbBand := make(map[int]band)
	bramBand := make(map[int]band)
	for _, r := range regions {
		lo, hi := dev.RowWordRange(r.Row0, r.H)
		for c := r.Col0; c < r.Col0+r.W; c++ {
			clbBand[c] = band{lo, hi}
		}
		for _, b := range dev.BRAMColumns(r) {
			bramBand[b] = band{lo, hi}
		}
	}
	frame := make([]uint32, dev.FrameLen())
	fill := func(far fabric.FAR, b band, blank bool) {
		seed := uint64(far.Word()) ^ 0x57A71C_DE5160
		for i := range frame {
			if blank && i >= b.lo && i < b.hi {
				frame[i] = 0
				continue
			}
			frame[i] = staticWord(seed, i)
		}
		if err := cm.WriteFrame(far, frame); err != nil {
			panic(err)
		}
	}
	for col := 0; col < dev.Cols; col++ {
		b, blank := clbBand[col]
		for minor := 0; minor < fabric.FramesPerCLBColumn; minor++ {
			fill(fabric.FAR{Block: fabric.BlockCLB, Major: col, Minor: minor}, b, blank)
		}
	}
	for bcol := range dev.BRAMColPos {
		b, blank := bramBand[bcol]
		for minor := 0; minor < fabric.FramesPerBRAMColumn; minor++ {
			fill(fabric.FAR{Block: fabric.BlockBRAM, Major: bcol, Minor: minor}, b, blank)
		}
	}
}

func staticWord(seed uint64, i int) uint32 {
	x := seed + uint64(i)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return uint32(x ^ (x >> 31))
}

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.K.Now() }

// Measure runs fn and returns the simulated time it consumed.
func (s *System) Measure(fn func()) sim.Time {
	start := s.K.Now()
	fn()
	return s.K.Now() - start
}

// MemBase returns the external memory's bus address.
func (s *System) MemBase() uint32 {
	if s.Is64 {
		return AddrDDR
	}
	return AddrSRAM
}

// NumRegions returns how many dynamic regions the floorplan holds.
func (s *System) NumRegions() int { return len(s.regions) }

// RegionAt returns the geometry of region ri.
func (s *System) RegionAt(ri int) fabric.Region { return s.regions[ri].area.R }

// DockBase returns the active region's dock window bus address. Task code
// running inside ExecuteOn drives the region it was dispatched to.
func (s *System) DockBase() uint32 { return s.regions[s.active].dockBase }

// DockData returns the active region's dock data register bus address.
func (s *System) DockData() uint32 { return s.DockBase() + dock.RegData }

// DockIRQ returns the interrupt-controller line of the active region's
// dock (64-bit systems only).
func (s *System) DockIRQ() int { return s.regions[s.active].irqLine }

// Core returns the circuit currently bound to the active region's dock.
func (s *System) Core() hw.Core { return s.regions[s.active].core() }

// CurrentModule returns the module loaded in the active region — the
// region a task dispatched through ExecuteOn is driving. Task code
// verifies its module against this rather than Mgr.Current (region 0).
func (s *System) CurrentModule() string { return s.regions[s.active].mgr.Current() }

// LoadModule reconfigures region 0 with the named module, letting the
// planner choose the cheapest safe stream (a no-op when resident, a
// differential transition when the tracked state is authoritative, the
// complete stream otherwise), and reports what was streamed. It takes the
// system lock, so Status/Resident/PlanFor stay safe concurrently.
func (s *System) LoadModule(name string) (ConfigReport, error) {
	return s.LoadModuleOn(0, name)
}

// LoadModuleOn reconfigures the given region with the named module under
// the planner.
func (s *System) LoadModuleOn(ri int, name string) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	return s.loadWith(rs, name, rs.planning)
}

// LoadComplete reconfigures region 0 with the module's complete
// configuration stream regardless of planning mode — the state-independent
// worst case (still a no-op when the module is already resident).
func (s *System) LoadComplete(name string) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadWith(s.regions[0], name, false)
}

// WriteMem loads bytes into external memory functionally (test and
// benchmark setup; the board would receive them over the UART or JTAG).
func (s *System) WriteMem(addr uint32, data []byte) error {
	return s.ExtMem.LoadBytes(addr-s.MemBase(), data)
}

// ReadMem copies bytes out of external memory functionally.
func (s *System) ReadMem(addr uint32, size int) ([]byte, error) {
	return s.ExtMem.ReadBytes(addr-s.MemBase(), size)
}
