// Package platform assembles the two complete systems of the paper: Sys32
// (XC2VP7, 32-bit OPB Dock, §3) and Sys64 (XC2VP30, 64-bit PLB Dock with
// scatter-gather DMA, §4). It wires CPU, buses, bridge, memories, HWICAP,
// dock, interrupt controller and the reconfiguration manager, loads the
// static design into the configuration memory, and registers every dynamic
// module that fits the region.
package platform

import "repro/internal/bus"

// Timing gathers every calibration parameter of a system in one place.
// The values are chosen so the published anchors hold: CPU 200 MHz and
// buses at 50 MHz on the 32-bit system, CPU 300 MHz and buses at 100 MHz on
// the 64-bit one (§3.1, §4.1), with protocol costs representative of
// CoreConnect implementations of that generation.
type Timing struct {
	CPUHz uint64
	BusHz uint64 // PLB and OPB share one frequency in both systems

	PLB bus.Params
	OPB bus.Params

	BridgeRequestCycles int
	BridgePostDepth     int

	DockReadWaits  int
	DockWriteWaits int

	// DCacheOn enables the PPC405 D-cache model. The 32-bit system runs
	// with the data cache off (standalone EDK-era configuration; it also
	// avoids coherence management with no DMA in the system), the 64-bit
	// system enables it — which is what makes cache-line traffic the only
	// 64-bit traffic besides DMA (§4.1).
	DCacheOn bool
}

// Sys32Timing returns the 32-bit system's calibration.
func Sys32Timing() Timing {
	return Timing{
		CPUHz:               200_000_000,
		BusHz:               50_000_000,
		PLB:                 bus.Params{ArbCycles: 2, ReadExtra: 2, WriteExtra: 0, BeatCycles: 1},
		OPB:                 bus.Params{ArbCycles: 2, ReadExtra: 1, WriteExtra: 0, BeatCycles: 1},
		BridgeRequestCycles: 1,
		BridgePostDepth:     2,
		DockReadWaits:       4,
		DockWriteWaits:      1,
		DCacheOn:            false,
	}
}

// Sys64Timing returns the 64-bit system's calibration.
func Sys64Timing() Timing {
	return Timing{
		CPUHz:               300_000_000,
		BusHz:               100_000_000,
		PLB:                 bus.Params{ArbCycles: 2, ReadExtra: 2, WriteExtra: 0, BeatCycles: 1},
		OPB:                 bus.Params{ArbCycles: 2, ReadExtra: 1, WriteExtra: 0, BeatCycles: 1},
		BridgeRequestCycles: 1,
		BridgePostDepth:     2,
		DockReadWaits:       2,
		DockWriteWaits:      1,
		DCacheOn:            true,
	}
}

// Address map shared by both systems (absolute bus addresses).
const (
	AddrBRAM   = 0xFFFF_0000
	BRAMSize   = 16 << 10
	AddrSRAM   = 0x2000_0000 // 32-bit system external memory (OPB)
	AddrDDR    = 0x0000_0000 // 64-bit system external memory (PLB)
	AddrDock32 = 0x4000_0000 // OPB Dock (4 KB window)
	AddrDock64 = 0x5000_0000 // PLB Dock (64 KB window)
	AddrICAP   = 0x4100_0000
	AddrUART   = 0x4200_0000
	AddrGPIO   = 0x4300_0000
	AddrINTC   = 0x4400_0000
	// bridgeBase/bridgeSize is the PLB window forwarded to the OPB.
	bridgeBase = 0x2000_0000
	bridgeSize = 0x2500_0000
)

// DockIRQLine is the interrupt-controller input driven by the PLB Dock.
const DockIRQLine = 0
