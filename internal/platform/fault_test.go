package platform_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	. "repro/internal/platform"
)

// TestDualRegionFaultScrubDemotesOnlyThatRegion is the fault-injection
// mirror of TestDualRegionAbortDemotesOnlyThatRegion: a bit flipped in
// region 1's band is detected by region 1's readback scrub and demotes
// only that region — the sibling's resident and the static hash stay
// authoritative, region 1's next load is forced onto a complete stream,
// and that reload heals the flip (a second scrub passes clean).
func TestDualRegionFaultScrubDemotesOnlyThatRegion(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(0, "jenkins"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(1, "fade"); err != nil {
		t.Fatal(err)
	}
	frames, words := s.FaultSpaceOn(1)
	if frames <= 0 || words <= 0 {
		t.Fatalf("fault space (%d frames, %d words), want nonempty", frames, words)
	}
	if err := s.InjectFaultOn(1, frames/2, words/2, 13); err != nil {
		t.Fatal(err)
	}
	// The flip is silent until someone looks: a scrub of the healthy
	// sibling sees nothing.
	if rep := s.ScrubOn(0); rep.Detected {
		t.Fatalf("scrub of untouched region 0 detected corruption: %+v", rep)
	}
	rep := s.ScrubOn(1)
	if !rep.Detected || rep.Module != "fade" {
		t.Fatalf("scrub of faulted region 1 reports %+v, want detection of fade", rep)
	}
	if got := s.ResidentOn(1); got != "" {
		t.Fatalf("faulted region 1 reports resident %q, want none", got)
	}
	if got := s.ResidentOn(0); got != "jenkins" {
		t.Fatalf("sibling region 0 demoted to %q by region 1's fault", got)
	}
	// Region 0 still plans differentials; region 1 is hazard-gated.
	p0, err := s.PlanForOn(0, "blend")
	if err != nil {
		t.Fatal(err)
	}
	if p0.Kind != plan.StreamDifferential {
		t.Errorf("region 0 plans %v after sibling fault, want differential", p0.Kind)
	}
	p1, err := s.PlanForOn(1, "fade")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Kind != plan.StreamComplete {
		t.Errorf("faulted region 1 plans %v, want complete (hazard gate)", p1.Kind)
	}
	// The complete reload overwrites every span frame: authority restored,
	// flip healed, scrub clean again.
	if _, err := s.LoadModuleOn(1, "fade"); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentOn(1); got != "fade" {
		t.Fatalf("region 1 resident %q after repair, want fade", got)
	}
	if rep := s.ScrubOn(1); rep.Detected {
		t.Fatalf("scrub after complete reload still detects corruption: %+v", rep)
	}
	if s.Status().Corrupted {
		t.Fatal("static design corrupted: the fault escaped the region band")
	}
	st := s.RegionStatuses()
	if st[1].ScrubFaults != 1 || st[1].FaultsInjected != 1 {
		t.Errorf("region 1 counters %+v, want 1 scrub fault / 1 injection", st[1])
	}
	if st[0].ScrubFaults != 0 || st[0].FaultsInjected != 0 {
		t.Errorf("region 0 counters moved by sibling fault: %+v", st[0])
	}
}

// TestScrubAfterAbortDoesNotDoubleDemote pins the scrub/abort interaction:
// a scrub issued while the region's abortable speculative stream is in
// flight serializes behind it on the system lock, and when the stream was
// aborted (state already demoted, golden CRC stale by definition) the
// scrub must not report a second loss — recovery still works exactly as
// for a plain abort.
func TestScrubAfterAbortDoesNotDoubleDemote(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(1, "fade"); err != nil {
		t.Fatal(err)
	}
	// Fire the scrub from a second goroutine while the speculative stream
	// holds the system lock; -race covers the interleaving.
	scrubbed := make(chan ScrubReport, 1)
	var polls atomic.Int64
	go func() { scrubbed <- s.ScrubOn(1) }()
	rep, err := s.LoadSpeculativeOn(1, "blend", func() bool {
		return polls.Add(1) > 2
	})
	if !errors.Is(err, core.ErrAborted) || !rep.Aborted {
		t.Fatalf("speculative load returned (%+v, %v), want abort", rep, err)
	}
	first := <-scrubbed
	// The concurrent scrub ran either before the stream started (clean
	// verified state) or after the abort (demoted, not re-scrubbable) —
	// in neither case is there a detection to report.
	if first.Detected {
		t.Fatalf("scrub racing an aborted speculative stream reported a fault: %+v", first)
	}
	// And scrubbing the demoted region again stays a no-op: one abort,
	// zero scrub faults, no double demotion.
	if rep := s.ScrubOn(1); rep.Detected {
		t.Fatalf("scrub of already-demoted region detected: %+v", rep)
	}
	st := s.RegionStatuses()
	if st[1].AbortedLoads != 1 || st[1].ScrubFaults != 0 {
		t.Errorf("region 1 counters %+v, want 1 aborted load / 0 scrub faults", st[1])
	}
	if _, err := s.LoadModuleOn(1, "blend"); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentOn(1); got != "blend" {
		t.Fatalf("region 1 resident %q after recovery, want blend", got)
	}
	if rep := s.ScrubOn(1); rep.Detected {
		t.Fatal("clean recovered region still reads corrupted")
	}
}
