package platform

import "repro/internal/fabric"

// StaticModule is one row of the static design's resource-usage table
// (Tables 1 and 6 of the paper).
type StaticModule struct {
	Name string
	Bus  string // attachment point
	Res  fabric.Resources
}

// Inventory returns the static design's module list with synthesis-sized
// resource figures representative of EDK-era CoreConnect IP, plus the
// dynamic area reservation. The figures are consistent with the anchors the
// paper states: the dynamic area is 25% of the 32-bit device's slices and
// 22.4% of the 64-bit device's.
func (s *System) Inventory() []StaticModule {
	if s.Is64 {
		return []StaticModule{
			{"PPC405 wrapper + JTAGPPC", "-", fabric.Resources{Slices: 12, LUTs: 8, FFs: 16}},
			{"PLB bus (64-bit)", "plb", fabric.Resources{Slices: 150, LUTs: 260, FFs: 180}},
			{"OPB bus", "opb", fabric.Resources{Slices: 60, LUTs: 100, FFs: 70}},
			{"PLB DDR controller", "plb", fabric.Resources{Slices: 950, LUTs: 1550, FFs: 1280, BRAMs: 0}},
			{"PLB BRAM controller", "plb", fabric.Resources{Slices: 90, LUTs: 140, FFs: 110, BRAMs: 8}},
			{"PLB-OPB bridge", "plb", fabric.Resources{Slices: 240, LUTs: 390, FFs: 320}},
			{"OPB HWICAP", "opb", fabric.Resources{Slices: 150, LUTs: 240, FFs: 190, BRAMs: 1}},
			{"OPB UART", "opb", fabric.Resources{Slices: 110, LUTs: 180, FFs: 130}},
			{"OPB interrupt controller", "opb", fabric.Resources{Slices: 90, LUTs: 150, FFs: 120}},
			{"Reset block", "-", fabric.Resources{Slices: 25, LUTs: 40, FFs: 35}},
			{"PLB Dock (DMA + FIFO + IRQ)", "plb", fabric.Resources{Slices: 680, LUTs: 1120, FFs: 930, BRAMs: 8}},
		}
	}
	return []StaticModule{
		{"PPC405 wrapper + JTAGPPC", "-", fabric.Resources{Slices: 12, LUTs: 8, FFs: 16}},
		{"PLB bus (64-bit)", "plb", fabric.Resources{Slices: 110, LUTs: 190, FFs: 140}},
		{"OPB bus", "opb", fabric.Resources{Slices: 60, LUTs: 100, FFs: 70}},
		{"PLB BRAM controller", "plb", fabric.Resources{Slices: 90, LUTs: 140, FFs: 110, BRAMs: 8}},
		{"PLB-OPB bridge", "plb", fabric.Resources{Slices: 240, LUTs: 390, FFs: 320}},
		{"OPB EMC (external SRAM)", "opb", fabric.Resources{Slices: 190, LUTs: 310, FFs: 230}},
		{"OPB HWICAP", "opb", fabric.Resources{Slices: 150, LUTs: 240, FFs: 190, BRAMs: 1}},
		{"OPB UART", "opb", fabric.Resources{Slices: 110, LUTs: 180, FFs: 130}},
		{"OPB GPIO", "opb", fabric.Resources{Slices: 45, LUTs: 70, FFs: 60}},
		{"Reset block", "-", fabric.Resources{Slices: 25, LUTs: 40, FFs: 35}},
		{"OPB Dock (incl. bus macros)", "opb", fabric.Resources{Slices: 200, LUTs: 340, FFs: 260}},
	}
}

// StaticTotal sums the static inventory.
func (s *System) StaticTotal() fabric.Resources {
	var total fabric.Resources
	for _, m := range s.Inventory() {
		total = total.Add(m.Res)
	}
	return total
}

// BudgetCheck verifies that static design plus dynamic area fit the device.
func (s *System) BudgetCheck() error {
	total := s.StaticTotal().Add(fabric.Resources{
		Slices: s.Region.Slices(),
		LUTs:   s.Region.LUTs(),
		FFs:    s.Region.FFs(),
		BRAMs:  s.Region.BRAMBudget,
	})
	if !total.FitsDevice(s.Dev) {
		return errBudget(s.Name, total, s.Dev)
	}
	return nil
}

func errBudget(name string, total fabric.Resources, dev *fabric.Device) error {
	return &budgetError{name: name, total: total, dev: dev}
}

type budgetError struct {
	name  string
	total fabric.Resources
	dev   *fabric.Device
}

func (e *budgetError) Error() string {
	return "platform: " + e.name + " exceeds device capacity: needs " + e.total.String() +
		", device " + e.dev.String()
}
