package platform

import (
	"sync"
	"testing"
)

func TestExecuteCacheHitMiss(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Resident(); got != "" {
		t.Fatalf("fresh system resident = %q, want blank", got)
	}
	if !s.Supports("fade") || s.Supports("sha1") {
		t.Fatalf("Sys32 support: fade=%v sha1=%v, want true/false",
			s.Supports("fade"), s.Supports("sha1"))
	}
	miss, err := s.Execute("fade", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit || miss.Config == 0 {
		t.Fatalf("first load: hit=%v config=%v, want miss with nonzero config", miss.CacheHit, miss.Config)
	}
	hit, err := s.Execute("fade", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Config != 0 {
		t.Fatalf("reload: hit=%v config=%v, want hit with zero config", hit.CacheHit, hit.Config)
	}
	if got := s.Resident(); got != "fade" {
		t.Fatalf("resident = %q, want fade", got)
	}
}

// TestExecuteSerializes drives one system from many goroutines; the lock
// must serialize the simulated activity (run with -race).
func TestExecuteSerializes(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	mods := []string{"fade", "brightness", "blend", "passthrough"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Execute(mods[i%len(mods)], func() error {
				_ = s.Resident // no nested Resident: the lock is held
				s.CPU.Op(100)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.Mgr.Corrupted() {
		t.Fatal("static design corrupted by serialized executes")
	}
}
