package platform_test

import (
	"testing"

	"repro/internal/plan"
	. "repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tasks"
)

// TestCompressedLoadEndToEnd: with compression on, planned loads pick the
// compressed container, stream fewer bytes than the plain differential,
// and still bind a working core — the hazard gate and binding checks see
// the decoded frames, not the wire words.
func TestCompressedLoadEndToEnd(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompression(true)
	first, err := s.LoadModule("brightness")
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != plan.StreamCompressed {
		t.Fatalf("first load %+v, want a compressed stream", first)
	}
	db, _, err := s.Mgr.DifferentialSize("", "brightness")
	if err != nil {
		t.Fatal(err)
	}
	if first.Bytes >= db {
		t.Errorf("compressed load streamed %d B, plain differential is %d B", first.Bytes, db)
	}
	if s.Mgr.Current() != "brightness" || s.Mgr.Corrupted() {
		t.Fatalf("compressed load did not bind cleanly: current %q", s.Mgr.Current())
	}
	// A module-to-module swap decodes against the live region content (the
	// KEEP ops copy resident frames) and must still verify end-to-end.
	swap, err := s.LoadModule("blend")
	if err != nil {
		t.Fatal(err)
	}
	if swap.Kind != plan.StreamCompressed {
		t.Errorf("swap %+v, want a compressed stream", swap)
	}
	bl := tasks.BlendRun{Seed: 11, N: 256}
	if err := bl.Run(s); err != nil {
		t.Fatalf("blend after compressed swap: %v", err)
	}
	if n := s.Mgr.CompressedLoads(); n != 2 {
		t.Errorf("CompressedLoads = %d, want 2", n)
	}
}

// TestCompressedObserveUnskewed is the calibration regression: a compressed
// load must feed the planner's cost model its DECODED byte count. If the
// wire size were observed instead, the per-byte rate would read ~3x slower
// and every later differential estimate would be skewed by the same factor.
func TestCompressedObserveUnskewed(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompression(true)
	first, err := s.LoadModule("brightness")
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != plan.StreamCompressed {
		t.Fatalf("first load %+v, want compressed", first)
	}
	wire1, raw1, _, err := s.Mgr.CompressedSize("", "brightness")
	if err != nil {
		t.Fatal(err)
	}
	if wire1 != first.Bytes || raw1 <= wire1 {
		t.Fatalf("sizes: report %d B, memoized wire %d raw %d", first.Bytes, wire1, raw1)
	}
	// The first observation sets the rate exactly, so the next plan's
	// estimate is fully determined by what Observe was fed.
	p, err := s.PlanFor("blend")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.StreamCompressed || p.Raw <= 0 {
		t.Fatalf("plan %+v, want compressed with raw size", p)
	}
	perRaw := float64(first.Time) / float64(raw1)
	want := sim.Time(perRaw * float64(p.Raw))
	if diff := float64(p.Est-want) / float64(want); diff > 0.01 || diff < -0.01 {
		t.Errorf("Est = %v, want raw-calibrated %v (skewed wire-based would be ~%v)",
			p.Est, want, sim.Time(float64(first.Time)/float64(wire1)*float64(p.Raw)))
	}
}

// TestDMASiblingOverlap: two regions of one member Begin their loads on
// their own dock DMA engines; the port windows overlap in simulated time,
// so settling both costs max(d0, d1), not d0 + d1 — and the second
// settlement reports the overlapped part as hidden configuration time.
func TestDMASiblingOverlap(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	t0, err := s.BeginExecuteOn(0, "jenkins")
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.BeginExecuteOn(1, "fade")
	if err != nil {
		t.Fatal(err)
	}
	jk := tasks.JenkinsRun{Seed: 7, Len: 512, InitVal: 3}
	r0, err := s.FinishExecuteOn(t0, func() error { return jk.Run(s) })
	if err != nil {
		t.Fatalf("region 0 jenkins over DMA: %v (report %+v)", err, r0)
	}
	fd := tasks.FadeRun{Seed: 9, N: 512, F: 77}
	r1, err := s.FinishExecuteOn(t1, func() error { return fd.Run(s) })
	if err != nil {
		t.Fatalf("region 1 fade over DMA: %v (report %+v)", err, r1)
	}
	if !r0.DMA || !r1.DMA {
		t.Fatalf("reports not marked DMA: %+v / %+v", r0, r1)
	}
	if r1.ConfigHidden == 0 {
		t.Errorf("sibling port windows did not overlap: %+v", r1)
	}
	elapsed := s.Now() - start
	serialized := r0.Config + r0.ConfigHidden + r1.Config + r1.ConfigHidden + r0.Work + r1.Work
	if elapsed >= serialized {
		t.Errorf("no wall-clock win: elapsed %v >= serialized %v", elapsed, serialized)
	}
	if s.ResidentOn(0) != "jenkins" || s.ResidentOn(1) != "fade" {
		t.Fatalf("residents (%q, %q) after DMA loads", s.ResidentOn(0), s.ResidentOn(1))
	}
	// A repeat Begin on a warm region is a zero-window cache hit.
	th, err := s.BeginExecuteOn(0, "jenkins")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := s.FinishExecuteOn(th, func() error { return jk.Run(s) })
	if err != nil {
		t.Fatal(err)
	}
	if !rh.CacheHit || rh.Config != 0 || rh.BytesStreamed != 0 {
		t.Errorf("warm DMA ticket %+v, want zero-stream cache hit", rh)
	}
}

// TestDMACompressedLoad: the compressed container rides the DMA engine —
// wire-word-bound, so its port window is shorter than the plain
// differential's would be — and the decoded frames still verify.
func TestDMACompressedLoad(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompression(true)
	tk, err := s.BeginExecuteOn(0, "brightness")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Plan().Kind != plan.StreamCompressed {
		t.Fatalf("DMA plan %+v, want compressed", tk.Plan())
	}
	br := tasks.BrightnessRun{Seed: 5, N: 256, Delta: 40}
	r, err := s.FinishExecuteOn(tk, func() error { return br.Run(s) })
	if err != nil {
		t.Fatalf("brightness over compressed DMA: %v (report %+v)", err, r)
	}
	if !r.DMA || r.Kind != plan.StreamCompressed {
		t.Fatalf("report %+v, want compressed DMA load", r)
	}
	// Wire-bound window: the visible config time must undercut what the
	// plain differential would cost at 4 cycles per decoded word.
	if r.BytesStreamed*3 > tk.Plan().Raw {
		t.Errorf("wire %d B vs raw %d B: compression did not cut enough to matter", r.BytesStreamed, tk.Plan().Raw)
	}
	if s.Status().Corrupted {
		t.Fatal("static design corrupted by compressed DMA load")
	}
}
