package platform

import (
	"math/rand"
	"testing"

	"repro/internal/dock"
	"repro/internal/icap"
)

// The stress tests exercise the full reconfiguration path under randomized
// schedules and injected faults: after any sequence of loads, the platform
// must either hold a correctly bound module or visibly report the failure —
// never silently compute with a wrong circuit.

// TestCorruptedStreamThroughICAP injects a bit error into a cached stream
// and verifies the full platform path reports it: HWICAP error status, no
// (or broken) binding, and recovery by reloading a good stream.
func TestCorruptedStreamThroughICAP(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("brightness"); err != nil {
		t.Fatal(err)
	}
	// Stream a corrupted word directly at the HWICAP: a fresh sync +
	// garbage header makes the configuration logic error out.
	c := s.CPU
	c.SW(AddrICAP+icap.RegWriteFIFO, 0xAA995566)
	c.SW(AddrICAP+icap.RegWriteFIFO, 0xE0000001) // unsupported packet op
	c.SW(AddrICAP+icap.RegWriteFIFO, 0x12345678)
	st := c.LW(AddrICAP + icap.RegStatus)
	if st&icap.StatError == 0 {
		t.Fatal("HWICAP did not report the configuration error")
	}
	// Reset the configuration logic and reload a good module.
	c.SW(AddrICAP+icap.RegControl, icap.CtrlReset)
	if _, err := s.LoadModule("jenkins"); err != nil {
		t.Fatalf("recovery load failed: %v", err)
	}
	if s.Mgr.Current() != "jenkins" {
		t.Fatal("recovery did not bind jenkins")
	}
}

// TestRandomModuleSwapSchedule is a property-style stress test: a random
// schedule of complete loads must always bind the requested module, keep
// the static design intact, and leave the dock functional.
func TestRandomModuleSwapSchedule(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	mods := s.Mgr.Modules()
	rng := rand.New(rand.NewSource(2006))
	for i := 0; i < 12; i++ {
		m := mods[rng.Intn(len(mods))]
		if _, err := s.LoadModule(m); err != nil {
			t.Fatalf("load %d (%s): %v", i, m, err)
		}
		if s.Mgr.Current() != m {
			t.Fatalf("load %d: bound %q, want %q", i, s.Mgr.Current(), m)
		}
		if s.Mgr.Corrupted() {
			t.Fatalf("load %d corrupted the static design", i)
		}
		st, _ := s.Dock32.Read(dock.RegStatus, 4)
		if st&dock.StatBound == 0 || st&dock.StatBroken != 0 {
			t.Fatalf("load %d: dock status %#x", i, st)
		}
	}
}

// TestBrokenBindingAfterDifferentialIsDetectable drives the passthrough
// protocol against a broken binding and verifies the garbage is observable
// (the dock status plus wrong data), then recovers.
func TestBrokenBindingAfterDifferentialIsDetectable(t *testing.T) {
	s, err := NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("sha1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mgr.LoadDifferential("passthrough", ""); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Dock64.Read(dock.RegStatus, 4)
	if st&dock.StatBroken == 0 {
		t.Fatal("dock does not flag the broken configuration")
	}
	// The "passthrough" protocol no longer holds.
	s.CPU.SW(s.DockData(), 0x1234)
	if v := s.CPU.LW(s.DockData()); v == 0x1234 {
		t.Fatal("broken core accidentally echoes — garbage model too friendly")
	}
	if _, err := s.LoadModule("passthrough"); err != nil {
		t.Fatal(err)
	}
	s.CPU.SW(s.DockData(), 0x1234)
	if v := s.CPU.LW(s.DockData()); v != 0x1234 {
		t.Fatal("recovered passthrough does not echo")
	}
}
