package platform

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

// ConfigReport describes one reconfiguration of a dynamic region: which
// stream kind the planner chose (no-op, differential or complete), how many
// bytes went through the HWICAP and how long the configuration took in
// simulated time. Aborted marks a speculative stream that was stopped at a
// safe boundary; Bytes then counts only the words actually pushed. Region
// names the dynamic region the stream targeted.
type ConfigReport struct {
	Module  string
	Region  string
	Kind    plan.StreamKind
	Bytes   int
	Frames  int
	Time    sim.Time
	Aborted bool
	// At is the member's simulated time when the load began: the stream
	// occupied [At, At+Time] on the member's timeline. Trace spans are
	// anchored here, so a traced run renders the same window the kernel
	// accounted.
	At sim.Time
}

// ExecReport describes one task execution on a system: how the requested
// module got into its dynamic region (StreamNone is a bitstream cache hit —
// no ICAP traffic) and the simulated time split between reconfiguration and
// useful work.
type ExecReport struct {
	Module string
	// Region names the dynamic region the task executed on.
	Region string
	// CacheHit reports that the module was already resident (Kind ==
	// plan.StreamNone).
	CacheHit bool
	// Kind is the configuration stream the load path issued.
	Kind plan.StreamKind
	// BytesStreamed counts the configuration bytes through the HWICAP.
	BytesStreamed int
	// Config is the configuration time the requester actually waited for
	// (the visible part of a DMA port window, or the whole CPU-path load).
	Config sim.Time
	// ConfigHidden is the part of a DMA load's port window that overlapped
	// dispatch, work or a sibling region's load — configuration time that
	// never showed up as request latency. Zero for CPU-path loads.
	ConfigHidden sim.Time
	// DMA marks a load issued through the region dock's DMA engine.
	DMA  bool
	Work sim.Time
	// At is the member's simulated time when the request reached the
	// region: configuration occupied [At, At+Config] and work
	// [At+Config, At+Config+Work] on the member's timeline (for a DMA
	// load the hidden window part precedes At). Trace spans anchor here.
	At sim.Time
}

// Latency is the simulated time the request occupied the system.
func (r ExecReport) Latency() sim.Time { return r.Config + r.Work }

// Resident returns the name of the module currently configured in region 0
// — "" when blank, corrupted, or when the tracked state is not
// authoritative (e.g. after an aborted speculative stream left partial
// region content), so callers can treat it as a bitstream-cache key.
// Unlike Mgr.Current it is safe to call while another goroutine is inside
// Execute.
func (s *System) Resident() string { return s.ResidentOn(0) }

// ResidentOn returns the authoritative resident module of the given
// region, under the same contract as Resident.
func (s *System) ResidentOn(ri int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regions[ri].mgr.ResidentState()
	if !ok {
		return ""
	}
	return r
}

// Supports reports whether the named module fits any of this system's
// dynamic regions (SHA-1, for instance, does not fit the 32-bit system).
func (s *System) Supports(module string) bool {
	for _, rs := range s.regions {
		if rs.mgr.Has(module) {
			return true
		}
	}
	return false
}

// SupportsOn reports whether the named module fits the given region — on
// an uneven floorplan a module can fit one region and not its sibling
// (e.g. a region with no enclosed BRAM columns cannot host patternmatch).
func (s *System) SupportsOn(ri int, module string) bool {
	return s.regions[ri].mgr.Has(module)
}

// Status is a consistent snapshot of the system's reconfiguration state,
// summed over every dynamic region. Resident is region 0's authoritative
// resident — the whole fabric of a single-region system.
type Status struct {
	Resident      string
	Now           sim.Time
	Loads         uint64
	LoadTime      sim.Time
	StreamedBytes uint64
	CompleteLoads uint64
	DiffLoads     uint64
	AbortedLoads  uint64
	// ScrubPasses counts readback scrubs across the regions; ScrubFaults
	// the passes that detected corruption; FaultsInjected the bit-flips
	// the fault campaign applied.
	ScrubPasses    uint64
	ScrubFaults    uint64
	FaultsInjected uint64
	Corrupted      bool
}

// RegionStatus is one region's slice of the system status.
type RegionStatus struct {
	Region         string
	Resident       string
	Loads          uint64
	LoadTime       sim.Time
	StreamedBytes  uint64
	CompleteLoads  uint64
	DiffLoads      uint64
	AbortedLoads   uint64
	ScrubPasses    uint64
	ScrubFaults    uint64
	FaultsInjected uint64
	Corrupted      bool
}

// Status reports the resident module and manager statistics under the
// system lock, so it is safe while another goroutine is inside Execute.
// Resident follows the same authoritative-only contract as Resident():
// after an aborted speculative stream the region content is partial, so
// no module is reported.
func (s *System) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Status
	for i, rs := range s.regions {
		loads, loadTime, bytes := rs.mgr.Stats()
		complete, diff := rs.mgr.LoadKinds()
		st.Loads += loads
		st.LoadTime += loadTime
		st.StreamedBytes += bytes
		st.CompleteLoads += complete
		st.DiffLoads += diff
		st.AbortedLoads += rs.mgr.AbortedLoads()
		passes, faults := rs.mgr.ScrubStats()
		st.ScrubPasses += passes
		st.ScrubFaults += faults
		st.FaultsInjected += rs.mgr.FaultsInjected()
		st.Corrupted = st.Corrupted || rs.mgr.Corrupted()
		if i == 0 {
			if r, ok := rs.mgr.ResidentState(); ok {
				st.Resident = r
			}
		}
	}
	st.Now = s.K.Now()
	return st
}

// RegionStatuses reports every region's resident module and manager
// counters under the system lock.
func (s *System) RegionStatuses() []RegionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RegionStatus, len(s.regions))
	for i, rs := range s.regions {
		loads, loadTime, bytes := rs.mgr.Stats()
		complete, diff := rs.mgr.LoadKinds()
		resident, ok := rs.mgr.ResidentState()
		if !ok {
			resident = ""
		}
		passes, faults := rs.mgr.ScrubStats()
		out[i] = RegionStatus{
			Region:         rs.area.R.Name,
			Resident:       resident,
			Loads:          loads,
			LoadTime:       loadTime,
			StreamedBytes:  bytes,
			CompleteLoads:  complete,
			DiffLoads:      diff,
			AbortedLoads:   rs.mgr.AbortedLoads(),
			ScrubPasses:    passes,
			ScrubFaults:    faults,
			FaultsInjected: rs.mgr.FaultsInjected(),
			Corrupted:      rs.mgr.Corrupted(),
		}
	}
	return out
}

// SetPlanning toggles the differential-stream planner for every region of
// this system. With planning off, every cache miss streams the complete
// configuration — the pre-planner behaviour, kept as the comparison
// baseline.
func (s *System) SetPlanning(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rs := range s.regions {
		rs.planning = on
	}
}

// SetCompression toggles the compressed stream kind for every region's
// planner. Off (the default) keeps plans byte-identical to the three-kind
// planner; on lets the planner pick a compressed container whenever its
// wire size undercuts every plain candidate.
func (s *System) SetCompression(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rs := range s.regions {
		rs.planner.SetCompression(on)
	}
}

// PlanFor returns the stream region 0 would issue right now to make the
// module resident, without loading anything.
func (s *System) PlanFor(module string) (plan.Plan, error) {
	return s.PlanForOn(0, module)
}

// PlanForOn returns the stream the given region would issue right now to
// make the module resident, without loading anything. Safe to call while
// another goroutine is inside Execute; cost-aware schedulers use it to
// compare idle (member, region) pairs.
func (s *System) PlanForOn(ri int, module string) (plan.Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	return s.planFor(rs, module, rs.planning)
}

// planFor chooses the stream under the system lock. With usePlanner false
// the authoritative flag is narrowed so only the no-op (already resident)
// and complete streams remain — the state-independent baseline.
func (s *System) planFor(rs *regionSlot, module string, usePlanner bool) (plan.Plan, error) {
	resident, authoritative := rs.mgr.ResidentState()
	if !usePlanner {
		authoritative = authoritative && resident == module
	}
	return rs.planner.Plan(resident, authoritative, module)
}

// loadWith plans and executes one reconfiguration of the slot's region.
// Must run under the system lock (or on a single-threaded system):
// planning and loading are one atomic step, so the plan's assumed
// from-state cannot go stale between the choice and the stream — the
// manager still re-verifies it.
func (s *System) loadWith(rs *regionSlot, name string, usePlanner bool) (ConfigReport, error) {
	at := s.K.Now()
	p, err := s.planFor(rs, name, usePlanner)
	if err != nil {
		return ConfigReport{Module: name, Region: rs.area.R.Name, At: at}, err
	}
	t, err := rs.mgr.LoadPlanned(p)
	r := ConfigReport{Module: name, Region: rs.area.R.Name,
		Kind: p.Kind, Bytes: p.Bytes, Frames: p.Frames, Time: t, At: at}
	if err != nil {
		return r, err
	}
	if rs.mgr.Current() != name {
		return r, fmt.Errorf("platform: after loading %s region %s binds %q",
			name, rs.area.R.Name, rs.mgr.Current())
	}
	if p.Kind != plan.StreamNone {
		// Calibrate on the DECODED bytes the port consumed, not the wire
		// size: a compressed load's wire bytes would read ~3x slower per
		// byte and skew every differential estimate.
		rs.planner.Observe(p.Raw, t)
	}
	return r, nil
}

// RestoreEstimate returns region 0's state-independent restore estimate.
func (s *System) RestoreEstimate(module string) (int, error) {
	return s.RestoreEstimateOn(0, module)
}

// RestoreEstimateOn returns the planner's state-independent estimate, in
// wire bytes, of re-hosting the module on the given region later: the
// (blank → module) differential, falling back to the complete stream when
// no differential exists, and — when compression is enabled — the
// compressed container whenever it would stream fewer bytes (the same
// candidate set Plan weighs). A prefetcher weighs a speculative eviction
// by what bringing each side back would cost — a wide, rarely-requested
// module (sha1) is worth protecting over a narrow frequent one precisely
// because every transition involving it streams its full width, and with
// compression on that width is the compressed wire size, not the decoded
// frame count.
func (s *System) RestoreEstimateOn(ri int, module string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regions[ri].planner.RestoreBytes(module)
}

// LoadSpeculative speculatively configures region 0; see LoadSpeculativeOn.
func (s *System) LoadSpeculative(name string, stop func() bool) (ConfigReport, error) {
	return s.LoadSpeculativeOn(0, name, stop)
}

// LoadSpeculativeOn brings a module into the given region ahead of any
// request — the prefetch half of overlapping reconfiguration with
// computation. It plans like LoadModuleOn but issues the stream through
// the abortable path, polling stop at safe boundaries, so a real request
// that wants the region never waits for a full speculative stream: it
// triggers stop and takes the system lock as soon as the stream parks. On
// abort the report carries the partial byte count and Aborted=true, the
// region's resident state is demoted to non-authoritative, and
// core.ErrAborted is returned — the §2.2 hazard gate then forces the next
// load of THIS region onto a complete stream (sibling regions keep their
// authoritative state), so a stale speculative resident can never be
// executed against.
func (s *System) LoadSpeculativeOn(ri int, name string, stop func() bool) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	at := s.K.Now()
	if stop != nil && stop() {
		return ConfigReport{Module: name, Region: rs.area.R.Name, Aborted: true, At: at}, core.ErrAborted
	}
	p, err := s.planFor(rs, name, rs.planning)
	if err != nil {
		return ConfigReport{Module: name, Region: rs.area.R.Name, At: at}, err
	}
	t, bytes, err := rs.mgr.LoadPlannedAbortable(p, stop)
	r := ConfigReport{Module: name, Region: rs.area.R.Name,
		Kind: p.Kind, Bytes: bytes, Frames: p.Frames, Time: t, At: at}
	if errors.Is(err, core.ErrAborted) {
		r.Aborted = true
		return r, err
	}
	if err != nil {
		return r, err
	}
	if rs.mgr.Current() != name {
		return r, fmt.Errorf("platform: after speculative load of %s region %s binds %q",
			name, rs.area.R.Name, rs.mgr.Current())
	}
	if p.Kind != plan.StreamNone {
		// Completed loads calibrate on decoded bytes (see loadWith).
		rs.planner.Observe(p.Raw, t)
	}
	return r, nil
}

// Execute runs the module on region 0; see ExecuteOn.
func (s *System) Execute(module string, fn func() error) (ExecReport, error) {
	return s.ExecuteOn(0, module, fn)
}

// ExecuteOn reconfigures the given region with the named module (planner
// chooses the cheapest safe stream; no ICAP traffic when it is already
// resident) and then runs fn, which must drive this system only. The
// region becomes the active one for the duration: DockBase/DockData/
// DockIRQ/Core inside fn address its dock. All simulated activity is
// serialized under the system lock, so a pool of systems can be executed
// from concurrent goroutines as long as each call names the system it
// drives — two regions of one system interleave rather than overlap.
func (s *System) ExecuteOn(ri int, module string, fn func() error) (ExecReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	s.active = ri
	cfg, err := s.loadWith(rs, module, rs.planning)
	r := ExecReport{
		Module: module,
		Region: rs.area.R.Name,
		// A failed load is never a cache hit: the zero ConfigReport of a
		// planning error carries StreamNone without meaning it.
		CacheHit:      err == nil && cfg.Kind == plan.StreamNone,
		Kind:          cfg.Kind,
		BytesStreamed: cfg.Bytes,
		Config:        cfg.Time,
		At:            cfg.At,
	}
	if err != nil {
		s.active = 0
		return r, err
	}
	start := s.K.Now()
	err = fn()
	r.Work = s.K.Now() - start
	s.active = 0
	return r, err
}

// LoadTicket is one in-flight DMA-path configuration of a region: the
// stream content is already applied, the engine's port window is standing,
// and FinishExecuteOn settles the window against the member's timeline when
// the task actually needs the region. Sibling regions' tickets on one
// member overlap in simulated time.
type LoadTicket struct {
	ri      int
	module  string
	rs      *regionSlot
	pending *core.PendingLoad
	plan    plan.Plan
}

// Plan returns the stream the load path issued for this ticket.
func (t *LoadTicket) Plan() plan.Plan { return t.plan }

// BeginExecuteOn plans and starts the named module's configuration of the
// given region through its dock DMA engine. The plan and the engine Begin
// are one atomic step under the system lock; the returned ticket must be
// settled with FinishExecuteOn on the same system. A planning or
// configuration error is returned immediately, with the same demotion
// semantics as the CPU path.
func (s *System) BeginExecuteOn(ri int, module string) (*LoadTicket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	p, err := s.planFor(rs, module, rs.planning)
	if err != nil {
		return nil, err
	}
	pl, err := rs.mgr.BeginPlanned(p, rs.dma)
	if err != nil {
		return nil, err
	}
	return &LoadTicket{ri: ri, module: module, rs: rs, pending: pl, plan: p}, nil
}

// FinishExecuteOn settles a ticket's port window — the visible remainder is
// what this request waited for, the overlapped part is reported as
// ConfigHidden — and then runs fn on the configured region, exactly like
// ExecuteOn's work phase.
func (s *System) FinishExecuteOn(t *LoadTicket, fn func() error) (ExecReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := t.rs
	s.active = t.ri
	at := s.K.Now()
	visible, hidden := rs.mgr.FinishLoad(t.pending)
	r := ExecReport{
		Module:        t.module,
		Region:        rs.area.R.Name,
		CacheHit:      t.plan.Kind == plan.StreamNone,
		Kind:          t.plan.Kind,
		BytesStreamed: t.pending.Bytes(),
		Config:        visible,
		ConfigHidden:  hidden,
		DMA:           t.plan.Kind != plan.StreamNone,
		At:            at,
	}
	if rs.mgr.Current() != t.module {
		s.active = 0
		return r, fmt.Errorf("platform: after dma load of %s region %s binds %q",
			t.module, rs.area.R.Name, rs.mgr.Current())
	}
	start := s.K.Now()
	err := fn()
	r.Work = s.K.Now() - start
	s.active = 0
	return r, err
}
