package platform

import "repro/internal/sim"

// ExecReport describes one task execution on a system: whether the
// requested module was already resident in the dynamic area (a bitstream
// cache hit, no ICAP traffic) and the simulated time split between
// reconfiguration and useful work.
type ExecReport struct {
	Module   string
	CacheHit bool
	Config   sim.Time
	Work     sim.Time
}

// Latency is the simulated time the request occupied the system.
func (r ExecReport) Latency() sim.Time { return r.Config + r.Work }

// Resident returns the name of the module currently configured in the
// dynamic area ("" when blank or corrupted). Unlike Mgr.Current it is safe
// to call while another goroutine is inside Execute.
func (s *System) Resident() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Mgr.Current()
}

// Supports reports whether the named module fits this system's dynamic
// area (SHA-1, for instance, does not fit the 32-bit system).
func (s *System) Supports(module string) bool {
	return s.Mgr.Has(module)
}

// Status is a consistent snapshot of the system's reconfiguration state.
type Status struct {
	Resident      string
	Now           sim.Time
	Loads         uint64
	LoadTime      sim.Time
	StreamedBytes uint64
	Corrupted     bool
}

// Status reports the resident module and manager statistics under the
// system lock, so it is safe while another goroutine is inside Execute.
func (s *System) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	loads, loadTime, bytes := s.Mgr.Stats()
	return Status{
		Resident:      s.Mgr.Current(),
		Now:           s.K.Now(),
		Loads:         loads,
		LoadTime:      loadTime,
		StreamedBytes: bytes,
		Corrupted:     s.Mgr.Corrupted(),
	}
}

// Execute reconfigures the dynamic area with the named module (a no-op
// ICAP-wise when it is already resident) and then runs fn, which must
// drive this system only. All simulated activity is serialized under the
// system lock, so a pool of systems can be executed from concurrent
// goroutines as long as each call names the system it drives.
func (s *System) Execute(module string, fn func() error) (ExecReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := ExecReport{Module: module}
	r.CacheHit = s.Mgr.Current() == module && !s.Mgr.Corrupted()
	cfg, err := s.LoadModule(module)
	r.Config = cfg
	if err != nil {
		return r, err
	}
	start := s.K.Now()
	err = fn()
	r.Work = s.K.Now() - start
	return r, err
}
