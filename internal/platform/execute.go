package platform

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

// ConfigReport describes one reconfiguration of the dynamic area: which
// stream kind the planner chose (no-op, differential or complete), how many
// bytes went through the HWICAP and how long the configuration took in
// simulated time. Aborted marks a speculative stream that was stopped at a
// safe boundary; Bytes then counts only the words actually pushed.
type ConfigReport struct {
	Module  string
	Kind    plan.StreamKind
	Bytes   int
	Frames  int
	Time    sim.Time
	Aborted bool
}

// ExecReport describes one task execution on a system: how the requested
// module got into the dynamic area (StreamNone is a bitstream cache hit —
// no ICAP traffic) and the simulated time split between reconfiguration and
// useful work.
type ExecReport struct {
	Module string
	// CacheHit reports that the module was already resident (Kind ==
	// plan.StreamNone).
	CacheHit bool
	// Kind is the configuration stream the load path issued.
	Kind plan.StreamKind
	// BytesStreamed counts the configuration bytes through the HWICAP.
	BytesStreamed int
	Config        sim.Time
	Work          sim.Time
}

// Latency is the simulated time the request occupied the system.
func (r ExecReport) Latency() sim.Time { return r.Config + r.Work }

// Resident returns the name of the module currently configured in the
// dynamic area — "" when blank, corrupted, or when the tracked state is
// not authoritative (e.g. after an aborted speculative stream left partial
// region content), so callers can treat it as a bitstream-cache key.
// Unlike Mgr.Current it is safe to call while another goroutine is inside
// Execute.
func (s *System) Resident() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.Mgr.ResidentState()
	if !ok {
		return ""
	}
	return r
}

// Supports reports whether the named module fits this system's dynamic
// area (SHA-1, for instance, does not fit the 32-bit system).
func (s *System) Supports(module string) bool {
	return s.Mgr.Has(module)
}

// Status is a consistent snapshot of the system's reconfiguration state.
type Status struct {
	Resident      string
	Now           sim.Time
	Loads         uint64
	LoadTime      sim.Time
	StreamedBytes uint64
	CompleteLoads uint64
	DiffLoads     uint64
	AbortedLoads  uint64
	Corrupted     bool
}

// Status reports the resident module and manager statistics under the
// system lock, so it is safe while another goroutine is inside Execute.
// Resident follows the same authoritative-only contract as Resident():
// after an aborted speculative stream the region content is partial, so
// no module is reported.
func (s *System) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	loads, loadTime, bytes := s.Mgr.Stats()
	complete, diff := s.Mgr.LoadKinds()
	resident, ok := s.Mgr.ResidentState()
	if !ok {
		resident = ""
	}
	return Status{
		Resident:      resident,
		Now:           s.K.Now(),
		Loads:         loads,
		LoadTime:      loadTime,
		StreamedBytes: bytes,
		CompleteLoads: complete,
		DiffLoads:     diff,
		AbortedLoads:  s.Mgr.AbortedLoads(),
		Corrupted:     s.Mgr.Corrupted(),
	}
}

// SetPlanning toggles the differential-stream planner for this system.
// With planning off, every cache miss streams the complete configuration —
// the pre-planner behaviour, kept as the comparison baseline.
func (s *System) SetPlanning(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planning = on
}

// PlanFor returns the stream the system would issue right now to make the
// module resident, without loading anything. Safe to call while another
// goroutine is inside Execute; cost-aware schedulers use it to compare idle
// members.
func (s *System) PlanFor(module string) (plan.Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planFor(module, s.planning)
}

// planFor chooses the stream under the system lock. With usePlanner false
// the authoritative flag is narrowed so only the no-op (already resident)
// and complete streams remain — the state-independent baseline.
func (s *System) planFor(module string, usePlanner bool) (plan.Plan, error) {
	resident, authoritative := s.Mgr.ResidentState()
	if !usePlanner {
		authoritative = authoritative && resident == module
	}
	return s.Planner.Plan(resident, authoritative, module)
}

// loadWith plans and executes one reconfiguration. Must run under the
// system lock (or on a single-threaded system): planning and loading are
// one atomic step, so the plan's assumed from-state cannot go stale between
// the choice and the stream — the manager still re-verifies it.
func (s *System) loadWith(name string, usePlanner bool) (ConfigReport, error) {
	p, err := s.planFor(name, usePlanner)
	if err != nil {
		return ConfigReport{Module: name}, err
	}
	t, err := s.Mgr.LoadPlanned(p)
	r := ConfigReport{Module: name, Kind: p.Kind, Bytes: p.Bytes, Frames: p.Frames, Time: t}
	if err != nil {
		return r, err
	}
	if s.Mgr.Current() != name {
		return r, fmt.Errorf("platform: after loading %s the region binds %q", name, s.Mgr.Current())
	}
	if p.Kind != plan.StreamNone {
		s.Planner.Observe(p.Bytes, t)
	}
	return r, nil
}

// RestoreEstimate returns the planner's state-independent estimate, in
// stream bytes, of re-hosting the module later: the (blank → module)
// differential, falling back to the complete stream when no differential
// exists. A prefetcher weighs a speculative eviction by what bringing each
// side back would cost — a wide, rarely-requested module (sha1) is worth
// protecting over a narrow frequent one precisely because every transition
// involving it streams its full width.
func (s *System) RestoreEstimate(module string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.Planner.PairBytes("", module); ok {
		return b, nil
	}
	return s.Planner.CompleteBytes(module)
}

// LoadSpeculative brings a module into the dynamic area ahead of any
// request — the prefetch half of overlapping reconfiguration with
// computation. It plans like LoadModule but issues the stream through the
// abortable path, polling stop at safe boundaries, so a real request that
// wants the system never waits for a full speculative stream: it triggers
// stop and takes the system lock as soon as the stream parks. On abort the
// report carries the partial byte count and Aborted=true, the resident
// state is demoted to non-authoritative, and core.ErrAborted is returned —
// the §2.2 hazard gate then forces the next load to stream a complete
// configuration, so a stale speculative resident can never be executed
// against.
func (s *System) LoadSpeculative(name string, stop func() bool) (ConfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stop != nil && stop() {
		return ConfigReport{Module: name, Aborted: true}, core.ErrAborted
	}
	p, err := s.planFor(name, s.planning)
	if err != nil {
		return ConfigReport{Module: name}, err
	}
	t, bytes, err := s.Mgr.LoadPlannedAbortable(p, stop)
	r := ConfigReport{Module: name, Kind: p.Kind, Bytes: bytes, Frames: p.Frames, Time: t}
	if errors.Is(err, core.ErrAborted) {
		r.Aborted = true
		return r, err
	}
	if err != nil {
		return r, err
	}
	if s.Mgr.Current() != name {
		return r, fmt.Errorf("platform: after speculative load of %s the region binds %q", name, s.Mgr.Current())
	}
	if p.Kind != plan.StreamNone {
		s.Planner.Observe(bytes, t)
	}
	return r, nil
}

// Execute reconfigures the dynamic area with the named module (planner
// chooses the cheapest safe stream; no ICAP traffic when it is already
// resident) and then runs fn, which must drive this system only. All
// simulated activity is serialized under the system lock, so a pool of
// systems can be executed from concurrent goroutines as long as each call
// names the system it drives.
func (s *System) Execute(module string, fn func() error) (ExecReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, err := s.loadWith(module, s.planning)
	r := ExecReport{
		Module: module,
		// A failed load is never a cache hit: the zero ConfigReport of a
		// planning error carries StreamNone without meaning it.
		CacheHit:      err == nil && cfg.Kind == plan.StreamNone,
		Kind:          cfg.Kind,
		BytesStreamed: cfg.Bytes,
		Config:        cfg.Time,
	}
	if err != nil {
		return r, err
	}
	start := s.K.Now()
	err = fn()
	r.Work = s.K.Now() - start
	return r, err
}
