package platform

// Fault injection and readback scrubbing. A System models one board whose
// configuration SRAM takes soft errors: InjectFaultOn flips a bit inside a
// dynamic region's frame band, ScrubOn runs the region manager's
// readback-CRC pass over its frame spans. Detection demotes the region's
// resident state through the same §2.2 hazard gate an aborted speculative
// stream uses, so recovery is safe by construction — the next load of the
// region must stream a complete configuration, which rewrites every span
// frame and heals the flip as a side effect.

// ScrubReport is the outcome of one readback scrub of a dynamic region.
type ScrubReport struct {
	// Region names the scrubbed dynamic region.
	Region string
	// Detected reports a readback-CRC mismatch: the region's resident
	// state has been demoted and its next load will stream complete.
	Detected bool
	// Module is the resident the region lost to the fault ("" when the
	// region was blank) — what a repair reloads to return the slot to its
	// pre-fault warmth.
	Module string
}

// ScrubOn runs one readback-CRC scrub pass over the region's frame spans
// under the system lock: a scrub racing an in-flight speculative stream
// serializes behind it (and then sees either the verified post-stream
// state or an already-demoted aborted one — never a half-written region).
func (s *System) ScrubOn(ri int) ScrubReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.regions[ri]
	detected, module := rs.mgr.Scrub()
	return ScrubReport{Region: rs.area.R.Name, Detected: detected, Module: module}
}

// InjectFaultOn flips one configuration bit inside the region's row band:
// frame indexes the region's span frames, word its band words, bit the bit
// within the word. The flip mutates configuration memory directly (an SEU,
// not a stream) and goes unnoticed until a scrub or rebind looks.
func (s *System) InjectFaultOn(ri, frame, word int, bit uint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regions[ri].mgr.InjectFault(frame, word, bit)
}

// FaultSpaceOn reports the injectable coordinate space of the region —
// span frames by row-band words (of 32 bits each). Scenario generators
// draw fault coordinates uniformly inside it.
func (s *System) FaultSpaceOn(ri int) (frames, words int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regions[ri].mgr.FaultSpace()
}
