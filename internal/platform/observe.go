package platform

// Trace wiring: SetTracer threads one tracer through a board's regions —
// the planner's per-transition decisions, the manager's §2.2 hazard
// verdicts and resident-state demotions, and each region dock's DMA port
// windows. Every event is stamped with the member's simulated kernel time
// at the moment the underlying hook fires (all hooks run under the system
// lock's serialization), so a traced run is reproducible byte for byte.

import (
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SetTracer installs the tracer on every region of this board, tagging
// events with the given pool member ID. Call before any traffic; pass nil
// to leave the board untraced (the default).
func (s *System) SetTracer(tr *trace.Tracer, member int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
	s.traceMember = int32(member)
	for ri, rs := range s.regions {
		if tr == nil {
			rs.mgr.SetNotify(nil)
			rs.planner.SetObserver(nil)
			rs.dma.SetObserver(nil)
			continue
		}
		region := int32(ri)
		rs.mgr.SetNotify(func(event, reason string) {
			kind := trace.KindDemote
			if event == "hazard" {
				kind = trace.KindHazard
			}
			tr.Emit(trace.Event{Ts: s.K.Now(), Kind: kind,
				Member: s.traceMember, Region: region, Name: reason})
		})
		rs.planner.SetObserver(func(p plan.Plan) {
			tr.Emit(trace.Event{Ts: s.K.Now(), Kind: trace.KindPlan,
				Member: s.traceMember, Region: region,
				Name: p.Module + " " + p.Kind.String(), Arg: int64(p.Bytes)})
		})
		rs.dma.SetObserver(func(start, done sim.Time, words int, compressed bool) {
			name := ""
			if compressed {
				name = "compressed"
			}
			tr.Emit(trace.Event{Ts: start, Dur: done - start, Kind: trace.KindDMAWindow,
				Member: s.traceMember, Region: region, Name: name, Arg: int64(4 * words)})
		})
	}
}
