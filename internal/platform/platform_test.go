package platform

import (
	"testing"

	"repro/internal/dock"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/sim"
)

func TestSys32Boot(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if s.Is64 || s.Dock32 == nil || s.Dock64 != nil {
		t.Fatal("sys32 wiring wrong")
	}
	if s.CPU.CacheEnabled() {
		t.Error("sys32 must run with the D-cache off")
	}
	if s.CPUClk.Hz() != 200_000_000 || s.BusClk.Hz() != 50_000_000 {
		t.Error("sys32 clock frequencies do not match §3.1")
	}
	// SHA-1 must be the one skipped module.
	if len(s.Skipped) != 1 || s.Skipped[0] != "sha1" {
		t.Errorf("skipped = %v, want [sha1]", s.Skipped)
	}
	if err := s.BudgetCheck(); err != nil {
		t.Error(err)
	}
}

func TestSys64Boot(t *testing.T) {
	s, err := NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Is64 || s.Dock64 == nil || s.Dock32 != nil || s.INTC == nil {
		t.Fatal("sys64 wiring wrong")
	}
	if !s.CPU.CacheEnabled() {
		t.Error("sys64 must run with the D-cache on")
	}
	if s.CPUClk.Hz() != 300_000_000 || s.BusClk.Hz() != 100_000_000 {
		t.Error("sys64 clock frequencies do not match §4.1")
	}
	if len(s.Skipped) != 0 {
		t.Errorf("skipped on sys64 = %v, want none", s.Skipped)
	}
	if err := s.BudgetCheck(); err != nil {
		t.Error(err)
	}
}

func TestModuleLoadBindsCore(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if s.Core() != nil {
		t.Fatal("a core is bound before any configuration")
	}
	rep, err := s.LoadComplete("passthrough")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time == 0 || rep.Bytes == 0 || rep.Kind != plan.StreamComplete {
		t.Errorf("complete configuration report %+v, want nonzero complete stream", rep)
	}
	if s.Core() == nil || s.Core().Name() != "passthrough" {
		t.Fatalf("bound core = %v", s.Core())
	}
	// Reconfiguration times through the OPB HWICAP are in the
	// millisecond range for a region of this size.
	if rep.Time < sim.Millisecond || rep.Time > 500*sim.Millisecond {
		t.Errorf("config time %v outside the plausible HWICAP range", rep.Time)
	}
	// Loading the same module again is free.
	again, err := s.LoadModule("passthrough")
	if err != nil {
		t.Fatal(err)
	}
	if again.Time != 0 || again.Kind != plan.StreamNone {
		t.Errorf("reloading the current module should be a no-op, got %+v", again)
	}
}

// TestPlannedLoadUsesDifferential: with planning on (the default), a module
// swap against an authoritative resident state streams the smaller
// differential configuration, and the first load from the blank baseline is
// a differential against blank — both strictly smaller than the complete
// stream.
func TestPlannedLoadUsesDifferential(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	complete, _, err := s.Mgr.CompleteSize("brightness")
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.LoadModule("brightness")
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != plan.StreamDifferential || first.Bytes >= complete {
		t.Errorf("first load %+v, want differential below the %d B complete stream", first, complete)
	}
	if s.Mgr.Current() != "brightness" {
		t.Fatalf("bound %q after planned load", s.Mgr.Current())
	}
	swap, err := s.LoadModule("blend")
	if err != nil {
		t.Fatal(err)
	}
	if swap.Kind != plan.StreamDifferential || swap.Bytes == 0 {
		t.Errorf("swap %+v, want differential stream", swap)
	}
	if s.Mgr.Current() != "blend" || s.Mgr.Corrupted() {
		t.Fatal("planned differential swap did not bind cleanly")
	}
	// With planning disabled the same swap pays the complete stream.
	s.SetPlanning(false)
	back, err := s.LoadModule("brightness")
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != plan.StreamComplete || back.Bytes != complete {
		t.Errorf("planning off: %+v, want the %d B complete stream", back, complete)
	}
}

func TestDockRoundTripThroughCPU(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("passthrough"); err != nil {
		t.Fatal(err)
	}
	s.CPU.SW(s.DockData(), 0xDEAD0001)
	if v := s.CPU.LW(s.DockData()); v != 0xDEAD0001 {
		t.Fatalf("dock echo = %#x", v)
	}
}

func TestModuleSwapRebinds(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("jenkins"); err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "jenkins" {
		t.Fatal("jenkins not current")
	}
	if _, err := s.LoadModule("brightness"); err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "brightness" {
		t.Fatal("brightness not current after swap")
	}
	if s.Mgr.Corrupted() {
		t.Fatal("BitLinker-assembled swaps must never corrupt the static design")
	}
	loads, total, bytes := s.Mgr.Stats()
	if loads != 2 || total == 0 || bytes == 0 {
		t.Fatalf("manager stats: loads=%d total=%v bytes=%d", loads, total, bytes)
	}
}

func TestDifferentialHazardEndToEnd(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	// Load fade (complete). Then load a differential stream for blend that
	// assumes the region is blank — stale fade frames survive and the
	// region binds the broken core.
	if _, err := s.LoadModule("fade"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mgr.LoadDifferential("blend", ""); err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "" {
		t.Fatalf("differential config on wrong state bound %q, want broken", s.Mgr.Current())
	}
	st, _ := s.Dock32.Read(dock.RegStatus, 4)
	if st&dock.StatBroken == 0 {
		t.Fatal("dock does not report a broken configuration")
	}
	if _, broken := s.Core().(*hw.BrokenCore); !broken {
		t.Fatal("core is not the broken model")
	}
	// Recovery: a complete configuration fixes the region.
	if _, err := s.LoadModule("blend"); err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "blend" {
		t.Fatal("recovery load failed")
	}

	// A differential load against the correct assumed state works and is
	// faster than the complete stream.
	dt, err := s.Mgr.LoadDifferential("fade", "blend")
	if err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "fade" {
		t.Fatal("differential load on correct state did not bind")
	}
	_ = dt
}

func TestNaiveConfigCorruptsStaticDesign(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Corrupted() {
		t.Fatal("corrupted before any load")
	}
	if _, err := s.Mgr.LoadNaive("brightness"); err != nil {
		t.Fatal(err)
	}
	if !s.Mgr.Corrupted() {
		t.Fatal("naive configuration did not corrupt the static design")
	}
}

func TestDifferentialFasterThanComplete(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.LoadComplete("brightness")
	if err != nil {
		t.Fatal(err)
	}
	// Differential from brightness to blend (both small components docked
	// at the right edge; most of the region is blank in both).
	diff, err := s.Mgr.LoadDifferential("blend", "brightness")
	if err != nil {
		t.Fatal(err)
	}
	if s.Mgr.Current() != "blend" {
		t.Fatal("differential load did not bind blend")
	}
	if diff >= full.Time {
		t.Errorf("differential config (%v) not faster than complete (%v)", diff, full.Time)
	}
}

func TestSys64ModuleLoadAndDock(t *testing.T) {
	s, err := NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("sha1"); err != nil {
		t.Fatalf("sha1 must fit the 64-bit system: %v", err)
	}
	if s.Core().Name() != "sha1" {
		t.Fatal("sha1 not bound")
	}
	if _, err := s.LoadModule("passthrough"); err != nil {
		t.Fatal(err)
	}
	s.CPU.SW(s.DockData(), 0x1234)
	if v := s.CPU.LW(s.DockData()); v != 0x1234 {
		t.Fatalf("sys64 dock echo = %#x", v)
	}
}

func TestMemoryHelpers(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5}
	if err := s.WriteMem(s.MemBase()+0x1000, data); err != nil {
		t.Fatal(err)
	}
	back, err := s.ReadMem(s.MemBase()+0x1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatal("memory roundtrip mismatch")
		}
	}
	// CPU sees the same data over the bus.
	if v := s.CPU.LB(s.MemBase() + 0x1000); v != 1 {
		t.Fatalf("LB = %d", v)
	}
	// And the UART is reachable through the bridge.
	s.CPU.SW(AddrUART+4, 'X') // TX register
	if got := s.UART.Transmitted(); len(got) != 1 || got[0] != 'X' {
		t.Fatalf("uart tx = %q", got)
	}
}

func TestMeasureAndTimeFlow(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	d := s.Measure(func() { s.CPU.Op(1000) })
	if d != 1000*s.CPUClk.Period() {
		t.Fatalf("measured %v for 1000 ops", d)
	}
}

func TestInventoriesConsistent(t *testing.T) {
	for _, mk := range []func() (*System, error){NewSys32, NewSys64} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		inv := s.Inventory()
		if len(inv) < 10 {
			t.Errorf("%s inventory suspiciously small: %d rows", s.Name, len(inv))
		}
		if err := s.BudgetCheck(); err != nil {
			t.Error(err)
		}
		// The dock row must exist on both systems.
		found := false
		for _, m := range inv {
			if m.Name == "OPB Dock (incl. bus macros)" || m.Name == "PLB Dock (DMA + FIFO + IRQ)" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s inventory missing the dock", s.Name)
		}
	}
}
