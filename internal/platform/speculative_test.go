package platform

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
)

// TestSpeculativeLoadThenHit prefetches a module and checks that the next
// request for it is a planned no-op: the configuration time was paid off
// the request path.
func TestSpeculativeLoadThenHit(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.LoadSpeculative("fade", func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted || rep.Kind == plan.StreamNone || rep.Bytes == 0 || rep.Time == 0 {
		t.Fatalf("speculative report %+v, want a real stream", rep)
	}
	if got := s.Resident(); got != "fade" {
		t.Fatalf("resident %q after speculative load, want fade", got)
	}
	er, err := s.Execute("fade", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !er.CacheHit || er.Config != 0 {
		t.Fatalf("execute report %+v, want cache hit with zero config time", er)
	}
}

// TestSpeculativeAbortForcesCompleteReload aborts a speculative stream
// mid-flight and checks the safety chain end to end at the platform layer:
// Resident() stops naming the stale module, the next Execute streams a
// complete configuration, and the static design stays intact.
func TestSpeculativeAbortForcesCompleteReload(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("fade"); err != nil {
		t.Fatal(err)
	}
	// The first two polls are the entry checks of LoadSpeculative and
	// LoadPlannedAbortable; the third is the first in-stream boundary.
	polls := 0
	rep, err := s.LoadSpeculative("blend", func() bool {
		polls++
		return polls >= 3
	})
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("err = %v, want core.ErrAborted", err)
	}
	if !rep.Aborted || rep.Bytes <= 0 {
		t.Fatalf("abort report %+v, want partial bytes", rep)
	}
	if got := s.Resident(); got != "" {
		t.Fatalf("Resident() = %q after abort, want \"\" (non-authoritative)", got)
	}
	st := s.Status()
	if st.AbortedLoads != 1 {
		t.Fatalf("status aborted loads = %d, want 1", st.AbortedLoads)
	}

	er, err := s.Execute("blend", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if er.CacheHit || er.Kind != plan.StreamComplete {
		t.Fatalf("post-abort execute report %+v, want a complete-stream miss", er)
	}
	if s.Resident() != "blend" || s.Status().Corrupted {
		t.Fatalf("recovery failed: resident %q corrupted=%v", s.Resident(), s.Status().Corrupted)
	}
}

// TestSpeculativeAbortBeforeStartIsFree: a stop that is already set when
// the speculative load acquires the system costs nothing and changes
// nothing.
func TestSpeculativeAbortBeforeStartIsFree(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModule("fade"); err != nil {
		t.Fatal(err)
	}
	rep, err := s.LoadSpeculative("blend", func() bool { return true })
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("err = %v, want core.ErrAborted", err)
	}
	if rep.Bytes != 0 || !rep.Aborted {
		t.Fatalf("report %+v, want clean zero-byte abort", rep)
	}
	if got := s.Resident(); got != "fade" {
		t.Fatalf("Resident() = %q, want fade untouched", got)
	}
}

// TestSpeculativeCompressedStream pins the compressed speculative path:
// with compression enabled a speculative load rides the same planner as a
// demand load, so its stream is the compressed container — fewer wire
// bytes for the same hidden configuration — and the restore estimate the
// prefetch profit gate consumes shrinks to the compressed wire size.
func TestSpeculativeCompressedStream(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	plainRestore, err := s.RestoreEstimate("fade")
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompression(true)
	zRestore, err := s.RestoreEstimate("fade")
	if err != nil {
		t.Fatal(err)
	}
	if zRestore >= plainRestore {
		t.Fatalf("compressed restore estimate %d B, want < plain %d B (profit gate must price wire bytes)",
			zRestore, plainRestore)
	}
	rep, err := s.LoadSpeculative("fade", func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != plan.StreamCompressed {
		t.Fatalf("speculative report %+v, want a compressed stream", rep)
	}
	if rep.Bytes != zRestore {
		t.Fatalf("speculative stream %d B, restore estimate priced %d B", rep.Bytes, zRestore)
	}
	er, err := s.Execute("fade", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !er.CacheHit || er.Config != 0 {
		t.Fatalf("execute report %+v, want cache hit with zero config time", er)
	}
}

// TestSpeculativeCompressedAbort runs the abort safety chain with
// compression on: the demote-to-non-authoritative discipline is identical
// (Resident clears, the recovery stream is complete-based — here its
// compressed container) and the region recovers uncorrupted.
func TestSpeculativeCompressedAbort(t *testing.T) {
	s, err := NewSys32()
	if err != nil {
		t.Fatal(err)
	}
	s.SetCompression(true)
	if _, err := s.LoadModule("fade"); err != nil {
		t.Fatal(err)
	}
	polls := 0
	rep, err := s.LoadSpeculative("blend", func() bool {
		polls++
		return polls >= 3
	})
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("err = %v, want core.ErrAborted", err)
	}
	if !rep.Aborted || rep.Bytes <= 0 {
		t.Fatalf("abort report %+v, want partial bytes", rep)
	}
	if got := s.Resident(); got != "" {
		t.Fatalf("Resident() = %q after abort, want \"\" (non-authoritative)", got)
	}
	er, err := s.Execute("blend", func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if er.CacheHit {
		t.Fatalf("post-abort execute report %+v, want a miss", er)
	}
	if er.Kind != plan.StreamCompressed && er.Kind != plan.StreamComplete {
		t.Fatalf("post-abort stream kind %v, want a complete-based stream", er.Kind)
	}
	if s.Resident() != "blend" || s.Status().Corrupted {
		t.Fatalf("recovery failed: resident %q corrupted=%v", s.Resident(), s.Status().Corrupted)
	}
}
