package platform_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	. "repro/internal/platform"
	"repro/internal/tasks"
)

// TestDualRegionBuild: the 64-bit system splits its dynamic area into two
// independently reconfigurable regions, each with its own dock window and
// interrupt line, and every module that fits the half-width band registers
// on both.
func TestDualRegionBuild(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 2 {
		t.Fatalf("NumRegions = %d, want 2", s.NumRegions())
	}
	if s.Name != "sys64x2" {
		t.Errorf("name %q, want sys64x2", s.Name)
	}
	a, b := s.RegionAt(0), s.RegionAt(1)
	if a.W != b.W || a.H != b.H {
		t.Fatalf("split regions differ in geometry: %v vs %v", a, b)
	}
	if a.Col0+a.W >= b.Col0 {
		t.Fatalf("regions share or abut columns: %v vs %v (no static dock gap)", a, b)
	}
	for ri := 0; ri < 2; ri++ {
		for _, mod := range []string{"sha1", "jenkins", "brightness", "blend", "fade", "patternmatch"} {
			if !s.SupportsOn(ri, mod) {
				t.Errorf("region %d does not support %s", ri, mod)
			}
		}
	}
}

// TestDualRegionIndependentResidents: loading a module into one region
// must not disturb the sibling's authoritative resident state, binding or
// load counters — the per-region slice of the §2.2 tracking.
func TestDualRegionIndependentResidents(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(0, "jenkins"); err != nil {
		t.Fatal(err)
	}
	st0 := s.RegionStatuses()
	if _, err := s.LoadModuleOn(1, "fade"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(1, "brightness"); err != nil {
		t.Fatal(err)
	}
	st := s.RegionStatuses()
	if st[0].Resident != "jenkins" || st[1].Resident != "brightness" {
		t.Fatalf("residents (%q, %q), want (jenkins, brightness)", st[0].Resident, st[1].Resident)
	}
	if st[0].Loads != st0[0].Loads {
		t.Errorf("sibling loads moved region 0's counter: %d -> %d", st0[0].Loads, st[0].Loads)
	}
	if st[0].Corrupted || st[1].Corrupted {
		t.Fatal("static design corrupted by dual-region loads")
	}
	// Both region 1 loads plan differentials against its own verified
	// state (blank baseline, then fade) — the per-region planner at work.
	if st[1].DiffLoads != 2 || st[1].CompleteLoads != 0 {
		t.Errorf("region 1 loads: %d complete / %d diff, want 0 / 2",
			st[1].CompleteLoads, st[1].DiffLoads)
	}
	// Aggregate status sums the regions.
	agg := s.Status()
	if agg.Loads != st[0].Loads+st[1].Loads || agg.StreamedBytes != st[0].StreamedBytes+st[1].StreamedBytes {
		t.Errorf("aggregate status %+v does not sum region statuses %+v", agg, st)
	}
}

// TestDualRegionExecuteBothDocks runs self-verifying tasks on both regions
// of one device: each execution must address its own dock (the active
// region's window and IRQ line) and compute correct results.
func TestDualRegionExecuteBothDocks(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	jk := tasks.JenkinsRun{Seed: 7, Len: 512, InitVal: 3}
	if rep, err := s.ExecuteOn(0, jk.Module(), func() error { return jk.Run(s) }); err != nil {
		t.Fatalf("region 0 jenkins: %v (report %+v)", err, rep)
	}
	fd := tasks.FadeRun{Seed: 9, N: 512, F: 77}
	if rep, err := s.ExecuteOn(1, fd.Module(), func() error { return fd.Run(s) }); err != nil {
		t.Fatalf("region 1 fade: %v (report %+v)", err, rep)
	} else if rep.Region != s.RegionAt(1).Name {
		t.Errorf("report region %q, want %q", rep.Region, s.RegionAt(1).Name)
	}
	// Both residents survive both executions: the device now holds two
	// warm configurations, which a single-region system cannot.
	hit, err := s.ExecuteOn(0, jk.Module(), func() error { return jk.Run(s) })
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Kind != plan.StreamNone {
		t.Errorf("second jenkins on region 0: %+v, want zero-stream cache hit", hit)
	}
	// A DMA-driven task on region 1 must use region 1's interrupt line.
	tr := tasks.TransferRun{Kind: tasks.TransferWrite, Words: 128}
	if _, err := s.ExecuteOn(1, tr.Module(), func() error { return tr.Run(s) }); err != nil {
		t.Fatalf("region 1 transfer: %v", err)
	}
}

// TestDualRegionAbortDemotesOnlyThatRegion aborts a speculative stream
// into region 1 and checks that the hazard gate demotes only region 1 —
// region 0's authoritative resident keeps planning differentials, while
// region 1's next load is forced onto a complete stream.
func TestDualRegionAbortDemotesOnlyThatRegion(t *testing.T) {
	s, err := NewSys64N(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(0, "jenkins"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadModuleOn(1, "fade"); err != nil {
		t.Fatal(err)
	}
	var polls atomic.Int64
	rep, err := s.LoadSpeculativeOn(1, "blend", func() bool {
		return polls.Add(1) > 2 // park a few chunks in
	})
	if !errors.Is(err, core.ErrAborted) || !rep.Aborted {
		t.Fatalf("speculative load returned (%+v, %v), want abort", rep, err)
	}
	if got := s.ResidentOn(1); got != "" {
		t.Fatalf("aborted region 1 reports resident %q, want none", got)
	}
	if got := s.ResidentOn(0); got != "jenkins" {
		t.Fatalf("sibling region 0 demoted to %q by region 1's abort", got)
	}
	p0, err := s.PlanForOn(0, "blend")
	if err != nil {
		t.Fatal(err)
	}
	if p0.Kind != plan.StreamDifferential {
		t.Errorf("region 0 plans %v after sibling abort, want differential", p0.Kind)
	}
	p1, err := s.PlanForOn(1, "blend")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Kind != plan.StreamComplete {
		t.Errorf("aborted region 1 plans %v, want complete (hazard gate)", p1.Kind)
	}
	if p1.Region != s.RegionAt(1).Name || p0.Region != s.RegionAt(0).Name {
		t.Errorf("plans carry regions (%q, %q), want (%q, %q)",
			p0.Region, p1.Region, s.RegionAt(0).Name, s.RegionAt(1).Name)
	}
	// Recovery on region 1 streams complete and restores authority.
	if _, err := s.LoadModuleOn(1, "blend"); err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentOn(1); got != "blend" {
		t.Fatalf("region 1 resident %q after recovery, want blend", got)
	}
	if s.Status().Corrupted {
		t.Fatal("static design corrupted")
	}
}

// TestSingleRegionUnchanged: the n=1 constructors must behave exactly like
// the paper builds — same region geometry, same stream sizes.
func TestSingleRegionUnchanged(t *testing.T) {
	a, err := NewSys64()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSys64N(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Region != b.Region || a.Name != b.Name || a.NumRegions() != 1 || b.NumRegions() != 1 {
		t.Fatalf("n=1 build differs: %v vs %v", a.Region, b.Region)
	}
	for _, mod := range []string{"sha1", "jenkins", "brightness"} {
		sa, _, err := a.Mgr.CompleteSize(mod)
		if err != nil {
			t.Fatal(err)
		}
		sb, _, err := b.Mgr.CompleteSize(mod)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Errorf("%s complete stream: %d B vs %d B", mod, sa, sb)
		}
	}
}
