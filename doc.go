// Package repro is a full-system reproduction of Silva & Ferreira,
// "Exploiting dynamic reconfiguration of platform FPGAs: implementation
// issues" (IPPS 2006), built on a simulated Virtex-II Pro platform: fabric
// and configuration-memory model, frame-based partial bitstreams, a
// BitLinker-style assembly tool, CoreConnect buses, a timed PowerPC-405
// CPU model, HWICAP, the OPB/PLB Dock wrappers with scatter-gather DMA,
// and the paper's six dynamic-area task circuits with their software
// baselines. On top of the reproduction sits a reconfiguration scheduler
// (internal/sched) that multiplexes a pool of platforms (internal/pool)
// across competing task requests, treating the pool's dynamic areas as an
// LRU bitstream cache. See DESIGN.md for the architecture and
// EXPERIMENTS.md for the paper-versus-measured record.
package repro
